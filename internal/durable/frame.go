package durable

import (
	"repro/internal/exec"
	"repro/internal/memory"
)

// Frame: the CRC-framed record codec.
//
// A frame is a length-prefixed byte sequence in persistent memory with
// a trailing CRC64 word:
//
//	[ length 8B | payload … | pad to 8B | crc 8B ]
//
// The CRC is computed over the payload, salted with a caller-chosen
// binding value, so a frame validates only at its own logical position
// (monotonic ring offset, transaction id) — stale eras and relocated
// bytes fail to open. The layout matches the queue's historical entry
// layout exactly: the CRC word starts at the first word boundary past
// the payload so the CRC persist never shares a word with the
// payload's tail (that sharing would order the two persists through
// strong persist atomicity — an avoidable intra-record false
// dependence).

const (
	// frameHeaderBytes is the length word.
	frameHeaderBytes = 8
	// frameCRCBytes trails the payload.
	frameCRCBytes = 8
)

// CRCOffset returns the frame-relative offset of the CRC word for a
// payload length.
func CRCOffset(payloadLen int) uint64 {
	return uint64(memory.AlignUp(memory.Addr(frameHeaderBytes+payloadLen), memory.WordSize))
}

// FrameBytes returns the total frame size for a payload length.
func FrameBytes(payloadLen int) uint64 {
	return CRCOffset(payloadLen) + frameCRCBytes
}

// SealFrame persists one frame at base: length word, payload bytes,
// CRC word. The caller orders the frame against other persists (the
// frame's own words may persist in any order; recovery treats a frame
// that fails to open as never written).
func SealFrame(t *exec.Thread, base memory.Addr, salt uint64, payload []byte) {
	t.Store8(base, uint64(len(payload)))
	t.StoreBytes(base+frameHeaderBytes, payload)
	t.Store8(base+memory.Addr(CRCOffset(len(payload))), Checksum(salt, payload))
}

// OpenFrame reads the frame at base from a post-crash image and
// returns its payload. ok is false — and the payload nil — when the
// frame cannot be trusted: implausible length (zero, or beyond
// maxPayload), or CRC mismatch under the expected salt. A torn or
// bit-rotted frame is thus *detected*, never returned. OpenFrame reads
// values only; callers check media poison separately.
func OpenFrame(im *memory.Image, base memory.Addr, salt uint64, maxPayload uint64) (payload []byte, ok bool) {
	length := im.ReadWord(base)
	if length == 0 || length > maxPayload {
		return nil, false
	}
	payload = make([]byte, length)
	im.ReadBytes(base+frameHeaderBytes, payload)
	if im.ReadWord(base+memory.Addr(CRCOffset(int(length)))) != Checksum(salt, payload) {
		return nil, false
	}
	return payload, true
}
