package durable

import (
	"hash/crc64"
	"math/bits"
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/memory"
)

func TestCDBConstantsDerivation(t *testing.T) {
	tab := crc64.MakeTable(crc64.ECMA)
	if got := crc64.Checksum([]byte("0"), tab); got != CDBFalse {
		t.Fatalf("CDBFalse = %#x, crc64(\"0\") = %#x", CDBFalse, got)
	}
	if got := crc64.Checksum([]byte("1"), tab); got != CDBTrue {
		t.Fatalf("CDBTrue = %#x, crc64(\"1\") = %#x", CDBTrue, got)
	}
	if d := bits.OnesCount64(CDBFalse ^ CDBTrue); d < 16 {
		t.Fatalf("CDB constants Hamming distance %d — too close for corruption detection", d)
	}
}

func TestDecodeCDB(t *testing.T) {
	cases := []struct {
		name    string
		v       uint64
		val, ok bool
	}{
		{"false constant", CDBFalse, false, true},
		{"true constant", CDBTrue, true, true},
		{"zero", 0, false, false},
		{"all ones", ^uint64(0), false, false},
		{"false with one flipped bit", CDBFalse ^ (1 << 17), false, false},
		{"true with one flipped bit", CDBTrue ^ (1 << 63), false, false},
		{"plain boolean 1", 1, false, false},
	}
	for _, c := range cases {
		val, ok := DecodeCDB(c.v)
		if val != c.val || ok != c.ok {
			t.Errorf("%s: DecodeCDB(%#x) = (%v, %v), want (%v, %v)", c.name, c.v, val, ok, c.val, c.ok)
		}
	}
}

// sealImage seals one frame on a fresh machine and returns the image
// and the frame's base address.
func sealImage(t *testing.T, salt uint64, payload []byte) (*memory.Image, memory.Addr) {
	t.Helper()
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	base := s.MallocPersistent(int(FrameBytes(len(payload))), memory.WordSize)
	SealFrame(s, base, salt, payload)
	return m.PersistentImage(), base
}

func TestFrameRoundTrip(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 64, 100} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i*7 + n)
		}
		im, base := sealImage(t, uint64(n)*13, payload)
		got, ok := OpenFrame(im, base, uint64(n)*13, 1<<20)
		if !ok {
			t.Fatalf("len %d: sealed frame did not open", n)
		}
		if string(got) != string(payload) {
			t.Fatalf("len %d: payload mismatch", n)
		}
	}
}

func TestFrameAdversarial(t *testing.T) {
	const salt = 42
	payload := make([]byte, 24)
	for i := range payload {
		payload[i] = byte(i + 1)
	}
	cases := []struct {
		name string
		mut  func(im *memory.Image, base memory.Addr)
	}{
		{"torn exactly at the CRC word", func(im *memory.Image, base memory.Addr) {
			// The crash cut the CRC persist: the word still holds its
			// pre-write value (zero on fresh media).
			im.WriteWord(base+memory.Addr(CRCOffset(len(payload))), 0)
		}},
		{"flip in the length field", func(im *memory.Image, base memory.Addr) {
			im.FlipBit(base, 3)
		}},
		{"length zeroed (frame never started)", func(im *memory.Image, base memory.Addr) {
			im.WriteWord(base, 0)
		}},
		{"length implausibly large", func(im *memory.Image, base memory.Addr) {
			im.WriteWord(base, 1<<40)
		}},
		{"single payload bit flip", func(im *memory.Image, base memory.Addr) {
			im.FlipBit(base+frameHeaderBytes+5, 6)
		}},
		{"single CRC bit flip", func(im *memory.Image, base memory.Addr) {
			im.FlipBit(base+memory.Addr(CRCOffset(len(payload))), 0)
		}},
	}
	for _, c := range cases {
		im, base := sealImage(t, salt, payload)
		c.mut(im, base)
		if _, ok := OpenFrame(im, base, salt, 1<<20); ok {
			t.Errorf("%s: corrupted frame opened", c.name)
		}
	}
	// Wrong salt: the same bytes must not validate at another logical
	// position (stale-era defense).
	im, base := sealImage(t, salt, payload)
	if _, ok := OpenFrame(im, base, salt+1, 1<<20); ok {
		t.Error("frame opened under the wrong salt")
	}
}

func TestChecksumProperty(t *testing.T) {
	f := func(salt uint64, data []byte, flip uint16) bool {
		if len(data) == 0 {
			return true
		}
		c := Checksum(salt, data)
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[int(flip)%len(mut)] ^= 1 << (flip % 8)
		return Checksum(salt, mut) != c && Checksum(salt+1, data) != c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// wordImage stores a sequence of values through a durable Word and
// returns the final image and word.
func wordImage(t *testing.T, vals ...uint64) (*memory.Image, Word) {
	t.Helper()
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	w := NewWord(s, 0)
	for _, v := range vals {
		w.Store(s, v, true)
	}
	return m.PersistentImage(), w
}

func TestWordRoundTrip(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	w := NewWord(s, 7)
	if got := w.Load(s); got != 7 {
		t.Fatalf("Load after init = %d", got)
	}
	for i := uint64(8); i < 16; i++ {
		w.Store(s, i, true)
		if got := w.Load(s); got != i {
			t.Fatalf("Load after Store(%d) = %d", i, got)
		}
	}
	r := ReadWord(m.PersistentImage(), w.Base)
	if !r.OK || r.Val != 15 || r.Detected() {
		t.Fatalf("recovery read = %+v, want clean 15", r)
	}
}

func TestWordAdversarial(t *testing.T) {
	cases := []struct {
		name     string
		mut      func(im *memory.Image, w Word)
		wantOK   bool
		wantVal  uint64
		detected bool
	}{
		{"clean", func(im *memory.Image, w Word) {}, true, 5, false},
		{"cdb bit flip falls back to a valid copy", func(im *memory.Image, w Word) {
			im.FlipBit(w.Base+offCDB, 5)
		}, true, 5, true},
		{"active copy value flip falls back to previous value", func(im *memory.Image, w Word) {
			// After storing 4 then 5 the active copy holds 5; corrupting
			// it must surface 4, not trust the rot.
			im.FlipBit(w.Base+activeValOff(im, w), 2)
		}, true, 4, true},
		{"active copy CRC flip falls back", func(im *memory.Image, w Word) {
			im.FlipBit(w.Base+activeValOff(im, w)+8, 2)
		}, true, 4, true},
		{"cdb corrupt with both copies valid prefers the larger", func(im *memory.Image, w Word) {
			im.WriteWord(w.Base+offCDB, 0xdead)
		}, true, 5, true},
		{"both copies corrupt is unrecoverable but detected", func(im *memory.Image, w Word) {
			im.FlipBit(w.Base+offAVal, 1)
			im.FlipBit(w.Base+offBVal, 1)
		}, false, 0, true},
		{"poisoned cdb falls back to copies", func(im *memory.Image, w Word) {
			im.Poison(w.Base + offCDB)
		}, true, 5, true},
		{"poisoned active copy falls back", func(im *memory.Image, w Word) {
			im.Poison(w.Base + activeValOff(im, w))
		}, true, 4, true},
	}
	for _, c := range cases {
		im, w := wordImage(t, 4, 5)
		c.mut(im, w)
		r := ReadWord(im, w.Base)
		if r.OK != c.wantOK || (r.OK && r.Val != c.wantVal) || r.Detected() != c.detected {
			t.Errorf("%s: ReadWord = %+v, want ok=%v val=%d detected=%v",
				c.name, r, c.wantOK, c.wantVal, c.detected)
		}
	}
}

// activeValOff returns the value offset of the currently active copy.
func activeValOff(im *memory.Image, w Word) memory.Addr {
	if b, ok := DecodeCDB(im.ReadWord(w.Base + offCDB)); ok && b {
		return offBVal
	}
	return offAVal
}

func TestWordAbsorb(t *testing.T) {
	im, w := wordImage(t, 4, 5)
	im.FlipBit(w.Base+offCDB, 3)
	im.FlipBit(w.Base+activeValOff(im, w), 1) // cdb now invalid; flip copy A too
	var rep fault.RecoveryReport
	ReadWord(im, w.Base).Absorb(&rep, "head")
	if !rep.Detected() || !rep.DetectedByIntegrity() {
		t.Fatalf("report %v not marked detected", rep.String())
	}
	if rep.CDBDetected == 0 {
		t.Fatalf("report %v missing CDB detection", rep.String())
	}
	if len(rep.Notes) == 0 {
		t.Fatal("no notes recorded")
	}
}

func TestWordStoreStrictEmitsNoBarriers(t *testing.T) {
	// Under strict persistency the store recipe must not add barriers;
	// count trace ops indirectly by comparing op counts.
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	w := NewWord(s, 0)
	before := m.Ops()
	w.Store(s, 1, false)
	strictOps := m.Ops() - before
	before = m.Ops()
	w.Store(s, 2, true)
	relaxedOps := m.Ops() - before
	if relaxedOps != strictOps+2 {
		t.Fatalf("relaxed store %d ops, strict %d — want exactly 2 extra barriers", relaxedOps, strictOps)
	}
}

func TestFrameBytesLayout(t *testing.T) {
	cases := []struct {
		payload int
		crcOff  uint64
		total   uint64
	}{
		{1, 16, 24},
		{8, 16, 24},
		{9, 24, 32},
		{16, 24, 32},
		{80, 88, 96},
	}
	for _, c := range cases {
		if got := CRCOffset(c.payload); got != c.crcOff {
			t.Errorf("CRCOffset(%d) = %d, want %d", c.payload, got, c.crcOff)
		}
		if got := FrameBytes(c.payload); got != c.total {
			t.Errorf("FrameBytes(%d) = %d, want %d", c.payload, got, c.total)
		}
	}
}
