package durable

import (
	"bytes"
	"testing"

	"repro/internal/exec"
	"repro/internal/memory"
)

// The fuzz targets pin the integrity layer's safety property against
// arbitrary single-byte corruption: a mutated frame or durable word
// must never be returned as valid-but-wrong. Payloads and stored
// values derive pseudorandomly from the fuzzed seed rather than being
// fuzzer-controlled bytes, so the fuzzer cannot plant a CRC preimage
// and then "corrupt" it into a colliding sibling — it can only search
// over placements, which is the attack surface recovery actually
// faces.

// fuzzPayload expands a seed into n pseudorandom bytes (xorshift64).
func fuzzPayload(seed uint64, n int) []byte {
	b := make([]byte, n)
	x := seed | 1
	for i := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x)
	}
	return b
}

// FuzzOpenFrame seals one CRC frame, applies a single-byte XOR
// anywhere in the frame, and checks OpenFrame's contract: a mutation
// of any checked byte (length, payload, CRC) is detected — ok false —
// and the only mutations that may still open are no-ops and bytes in
// the pad gap between the payload tail and the CRC word, which the
// codec never trusts. Whenever ok is returned, the payload must be
// byte-identical to what was sealed.
func FuzzOpenFrame(f *testing.F) {
	f.Add(uint64(1), uint16(24), uint32(0), byte(1))
	f.Add(uint64(7), uint16(1), uint32(8), byte(0x80))
	f.Add(uint64(42), uint16(100), uint32(9), byte(0xff))
	f.Add(uint64(3), uint16(8), uint32(15), byte(4))
	f.Fuzz(func(t *testing.T, seed uint64, plen uint16, mutOff uint32, mutXor byte) {
		n := int(plen)%512 + 1
		payload := fuzzPayload(seed, n)
		salt := seed * 0x9e3779b97f4a7c15

		m := exec.NewMachine(exec.Config{})
		s := m.SetupThread()
		base := s.MallocPersistent(int(FrameBytes(n)), memory.WordSize)
		SealFrame(s, base, salt, payload)
		im := m.PersistentImage()

		off := memory.Addr(uint64(mutOff) % FrameBytes(n))
		var cell [1]byte
		im.ReadBytes(base+off, cell[:])
		cell[0] ^= mutXor
		im.WriteBytes(base+off, cell[:])

		got, ok := OpenFrame(im, base, salt, 1<<16)
		padGap := uint64(off) >= uint64(frameHeaderBytes+n) && uint64(off) < CRCOffset(n)
		if ok {
			if !bytes.Equal(got, payload) {
				t.Fatalf("frame opened with wrong payload (off %d xor %#x)", off, mutXor)
			}
			if mutXor != 0 && !padGap {
				t.Fatalf("mutated checked byte at offset %d (xor %#x) still opened", off, mutXor)
			}
		} else if mutXor == 0 {
			t.Fatalf("unmutated frame failed to open (len %d salt %#x)", n, salt)
		}
		if _, wok := OpenFrame(im, base, salt+1, 1<<16); wok {
			t.Fatalf("frame opened under the wrong salt")
		}
	})
}

// FuzzWordRead drives two committed Stores through a durable word,
// applies a single-byte XOR anywhere in the 40-byte footprint, and
// checks ReadWord's contract: the word never bricks (some copy always
// validates), the recovered value is one of the two committed values,
// and — the CDB-constant property — corruption is silent only when it
// is harmless: no detection evidence means the read returned the
// latest committed value.
func FuzzWordRead(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint32(0), byte(1))
	f.Add(uint64(5), uint64(5), uint32(8), byte(0x10))
	f.Add(uint64(9), uint64(3), uint32(39), byte(0xff))
	f.Fuzz(func(t *testing.T, v1, v2 uint64, mutOff uint32, mutXor byte) {
		m := exec.NewMachine(exec.Config{})
		s := m.SetupThread()
		w := NewWord(s, 0)
		w.Store(s, v1, true)
		w.Store(s, v2, true)
		im := m.PersistentImage()

		off := memory.Addr(uint64(mutOff) % WordBytes)
		var cell [1]byte
		im.ReadBytes(w.Base+off, cell[:])
		cell[0] ^= mutXor
		im.WriteBytes(w.Base+off, cell[:])

		r := ReadWord(im, w.Base)
		if !r.OK {
			t.Fatalf("single-byte corruption at offset %d (xor %#x) bricked the word", off, mutXor)
		}
		if r.Val != v1 && r.Val != v2 {
			t.Fatalf("recovered %d, want one of the committed values %d/%d (off %d xor %#x)",
				r.Val, v1, v2, off, mutXor)
		}
		if !r.Detected() && r.Val != v2 {
			t.Fatalf("silent corruption: no detection evidence but value %d != latest %d (off %d xor %#x)",
				r.Val, v2, off, mutXor)
		}
	})
}
