package durable

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/memory"
	"repro/internal/persistcheck"
)

// Word: a crash-atomic, corruption-detecting persistent uint64 cell.
//
// The plain structures commit through a single persistent word because
// strong persist atomicity serializes same-word persists under every
// model — but a single word has no redundancy: a silent bit flip in
// the queue's head or the journal's commit point re-frames the whole
// structure with a clean report. Word trades one cell for a dual-copy
// layout selected by a corruption-detecting boolean:
//
//	[ cdb 8B | aVal 8B | aCrc 8B | bVal 8B | bCrc 8B ]   (40 bytes)
//
// Store writes the *inactive* copy (value + CRC salted with the copy's
// address), orders it with a persist barrier, then flips the CDB — so
// the single-word CDB flip remains the atomic commit point, and any
// crash state shows a CDB whose active copy is fully persisted.
// Recovery (ReadWord) validates the active copy's CRC and falls back
// to the other copy when the CDB or the active copy is corrupt,
// reporting exactly what it detected.
//
// Because the commit metadata now spans several words, same-word
// atomicity alone no longer orders one Store against the next thread's
// — so Store opens with §5.3's read-then-barrier recipe: loading the
// CDB imports a dependence on the previous flip, and the barrier binds
// this Store's copy persists after it under every relaxed model. Word
// is meant for monotonic recovery metadata (ring offsets, transaction
// ids): when both copies validate but the CDB is corrupt, ReadWord
// prefers the larger value, which a monotonic protocol has always
// published safely.
const (
	// WordBytes is the persistent footprint of one durable Word.
	WordBytes = 40

	offCDB  = 0
	offAVal = 8
	offACRC = 16
	offBVal = 24
	offBCRC = 32
)

// Word locates one durable word by its base address (the CDB word).
type Word struct {
	Base memory.Addr
}

// NewWord allocates and initializes a durable word holding v. Both
// copies are written valid, a barrier orders them before the CDB, and
// the CDB selects copy A. The caller owns any trailing barrier (as
// with other setup-time persists).
func NewWord(s *exec.Thread, v uint64) Word {
	w := Word{Base: s.MallocPersistent(WordBytes, 64)}
	w.Init(s, v)
	return w
}

// Init (re)initializes the word in place to hold v with copy A active.
func (w Word) Init(s *exec.Thread, v uint64) {
	s.Store8(w.Base+offAVal, v)
	s.Store8(w.Base+offACRC, ChecksumWord(uint64(w.Base+offAVal), v))
	s.Store8(w.Base+offBVal, v)
	s.Store8(w.Base+offBCRC, ChecksumWord(uint64(w.Base+offBVal), v))
	// The copies must be bound before the CDB persist publishes them
	// (the same data→publication ordering every commit word needs).
	s.PersistBarrier()
	s.Store8(w.Base+offCDB, CDBFalse)
}

// Load reads the current value at runtime (trusted execution, no
// validation). The CDB is re-read after the copy to close the seqlock
// race with a concurrent Store by the copy's owner: a torn read is
// retried rather than returned.
func (w Word) Load(t *exec.Thread) uint64 {
	for {
		cdb := t.Load8(w.Base + offCDB)
		off := memory.Addr(offAVal)
		if b, _ := DecodeCDB(cdb); b {
			off = offBVal
		}
		v := t.Load8(w.Base + off)
		if t.Load8(w.Base+offCDB) == cdb {
			return v
		}
	}
}

// Store publishes v crash-atomically: write the inactive copy, bind
// it, flip the CDB. With relaxed true (any non-strict annotation
// discipline) Store emits the §5.3 recipe barrier after its CDB read
// and a barrier between the copy persists and the flip; under strict
// persistency execution order itself provides both.
func (w Word) Store(t *exec.Thread, v uint64, relaxed bool) {
	cdb := t.Load8(w.Base + offCDB)
	if relaxed {
		// Bind the imported dependence on the previous flip: this
		// Store's persists must be ordered after it (multi-word commit
		// metadata has no same-word atomicity chain to lean on).
		t.PersistBarrier()
	}
	valOff, next := memory.Addr(offBVal), CDBTrue // A active: write B
	if b, _ := DecodeCDB(cdb); b {
		valOff, next = offAVal, CDBFalse // B active: write A
	}
	t.Store8(w.Base+valOff, v)
	t.Store8(w.Base+valOff+8, ChecksumWord(uint64(w.Base+valOff), v))
	if relaxed {
		t.PersistBarrier() // copy before flip: the flip is the commit point
	}
	t.Store8(w.Base+offCDB, next)
}

// WordRead is the recovery-side outcome of reading a durable word.
type WordRead struct {
	// Val is the recovered value (meaningful only when OK).
	Val uint64
	// OK is false when no copy could be trusted.
	OK bool
	// CRCDetected counts copy CRC mismatches encountered.
	CRCDetected int
	// CDBDetected counts corrupt (non-constant) CDB reads.
	CDBDetected int
	// PoisonedWords counts poisoned cells encountered.
	PoisonedWords int
	// Fallback reports that the returned value came from the non-active
	// or heuristically chosen copy.
	Fallback bool
}

// Detected reports whether the read saw any evidence of corruption.
func (r WordRead) Detected() bool {
	return r.CRCDetected > 0 || r.CDBDetected > 0 || r.PoisonedWords > 0
}

// Absorb merges the read's detections into a recovery report,
// labeling notes with the word's role (e.g. "head", "committed").
func (r WordRead) Absorb(rep *fault.RecoveryReport, name string) {
	rep.CRCDetected += r.CRCDetected
	rep.CDBDetected += r.CDBDetected
	rep.PoisonedWords += r.PoisonedWords
	rep.BytesScanned += WordBytes
	if r.CRCDetected > 0 || r.PoisonedWords > 0 {
		rep.Note("%s copy corrupt (fallback %v)", name, r.Fallback)
	}
	if r.CDBDetected > 0 {
		rep.Note("%s cdb corrupt", name)
	}
	if !r.OK {
		rep.Note("%s unrecoverable", name)
	}
}

// ReadWord reads a durable word from a post-crash image, validating
// CDB and copy CRCs and falling back as the layout allows.
func ReadWord(im *memory.Image, base memory.Addr) WordRead {
	var r WordRead
	readCopy := func(valOff memory.Addr) (v uint64, valid bool) {
		if im.Poisoned(base+valOff) || im.Poisoned(base+valOff+8) {
			r.PoisonedWords++
			return 0, false
		}
		v = im.ReadWord(base + valOff)
		if im.ReadWord(base+valOff+8) != ChecksumWord(uint64(base+valOff), v) {
			r.CRCDetected++
			return 0, false
		}
		return v, true
	}

	cdbKnown := false
	var active bool
	if im.Poisoned(base + offCDB) {
		r.PoisonedWords++
	} else if cdb := im.ReadWord(base + offCDB); cdb == 0 {
		// Never persisted: a crash can cut the word's initialization
		// before the first CDB flip, leaving all-zero state. A single-bit
		// flip of either CDB constant cannot produce zero, and the store
		// recipe orders every copy write after the preceding flip, so the
		// copies hold at most the zero-valued Init state — the word reads
		// as value 0, no corruption evidence.
		r.OK = true
		return r
	} else if b, ok := DecodeCDB(cdb); ok {
		cdbKnown, active = true, b
	} else {
		r.CDBDetected++
	}

	if cdbKnown {
		actOff, othOff := memory.Addr(offAVal), memory.Addr(offBVal)
		if active {
			actOff, othOff = offBVal, offAVal
		}
		if v, valid := readCopy(actOff); valid {
			r.Val, r.OK = v, true
			return r
		}
		if v, valid := readCopy(othOff); valid {
			r.Val, r.OK, r.Fallback = v, true, true
		}
		return r
	}
	// Corrupt CDB: trust whichever copies validate; with both valid,
	// prefer the larger value (monotonic metadata: the larger value was
	// published with everything it covers already bound).
	av, aok := readCopy(offAVal)
	bv, bok := readCopy(offBVal)
	switch {
	case aok && bok:
		r.Val = av
		if bv > av {
			r.Val = bv
		}
		r.OK, r.Fallback = true, true
	case aok:
		r.Val, r.OK, r.Fallback = av, true, true
	case bok:
		r.Val, r.OK, r.Fallback = bv, true, true
	}
	return r
}

// Checks returns the persistency-checker annotations for a durable
// word whose value publishes the given data extents (the same scope
// semantics as persistcheck.Publication: valueCovers for monotonic
// offsets over data[0], allThreads for global-summary words, plain
// otherwise). Both value copies carry the publication obligation, and
// the CDB word is itself a plain publication over the copy region —
// the flip must be ordered after the copy persists it activates.
func (w Word) Checks(name string, data []persistcheck.Extent, valueCovers, allThreads bool) []persistcheck.Publication {
	pubs := []persistcheck.Publication{{
		Name:        fmt.Sprintf("%s-copy-a", name),
		Word:        w.Base + offAVal,
		Data:        data,
		ValueCovers: valueCovers,
		AllThreads:  allThreads,
	}, {
		Name:        fmt.Sprintf("%s-copy-b", name),
		Word:        w.Base + offBVal,
		Data:        data,
		ValueCovers: valueCovers,
		AllThreads:  allThreads,
	}, {
		Name: fmt.Sprintf("%s-cdb", name),
		Word: w.Base + offCDB,
		Data: []persistcheck.Extent{{Addr: w.Base + offAVal, Size: WordBytes - 8}},
	}}
	return pubs
}

// Extent returns the word's persistent footprint (for Protected
// declarations).
func (w Word) Extent() persistcheck.Extent {
	return persistcheck.Extent{Addr: w.Base, Size: WordBytes}
}
