// Package durable is the integrity layer for persistent formats:
// CRC-framed records, corruption-detecting booleans (CDBs), and
// dual-copy durable words built from both. It supplies the pieces the
// persistent structures (queue, journal, pstm) use to turn silent
// media corruption — the one fault class the fault engine injects that
// plain offset-keyed checksums may miss — into *detected* corruption.
//
// The recipe follows the verified-storage literature (the capybaraNS
// axioms): a byte sequence written to persistent memory is trusted
// only when it carries a CRC over its contents (Axiom_BytesUncorrupted
// in spirit: a frame whose CRC validates is, with overwhelming
// probability, the bytes that were written), and a boolean commit flag
// is stored as one of two constants far apart in Hamming distance, so
// any small corruption yields a value that is *neither* constant and
// the reader falls back to the other copy instead of trusting rot.
//
// Three exports matter:
//
//   - Frame (frame.go): a length-prefixed, CRC64-trailed record codec
//     over persistent words. SealFrame writes it; OpenFrame returns
//     (payload, ok) and never trusts a frame whose CRC mismatches.
//   - CDBFalse/CDBTrue + DecodeCDB: the corruption-detecting boolean.
//   - Word (word.go): a crash-atomic, corruption-detecting uint64 cell
//     (dual copies selected by a CDB) for commit points and other
//     monotonic recovery metadata.
//
// Everything here is deterministic and value-level; media poison
// (detectable-uncorrectable errors) stays the caller's concern, as in
// the rest of the recovery layer.
package durable

import (
	"encoding/binary"
	"hash/crc64"
)

// crcTable is the CRC64-ECMA table all durable checksums use.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Checksum computes the CRC64-ECMA checksum of data, salted with a
// caller-chosen binding value (a monotonic offset, an address, a
// transaction id — whatever ties the frame to its logical position so
// stale bytes from a previous era cannot masquerade as current).
func Checksum(salt uint64, data []byte) uint64 {
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], salt)
	return crc64.Update(crc64.Checksum(s[:], crcTable), crcTable, data)
}

// ChecksumWord is Checksum over a single uint64 value (the durable
// Word copies and the per-word shadow arrays use it).
func ChecksumWord(salt, v uint64) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return Checksum(salt, b[:])
}

// Corruption-detecting boolean constants: CRC64-ECMA of the ASCII
// bytes "0" and "1" (the capybaraNS construction). The two values
// differ in 37 of 64 bits, so no small burst of bit errors converts
// one into the other; any other read value is evidence of corruption.
const (
	// CDBFalse encodes false (durable Word: copy A is active).
	CDBFalse uint64 = 0x9901423b97329582
	// CDBTrue encodes true (durable Word: copy B is active).
	CDBTrue uint64 = 0x2a2f0e859495caed
)

// DecodeCDB interprets a corruption-detecting boolean. ok is false
// when v is neither constant — the read bytes are corrupt and the
// caller must fall back (to the other copy, the previous epoch)
// rather than guess.
func DecodeCDB(v uint64) (val bool, ok bool) {
	switch v {
	case CDBFalse:
		return false, true
	case CDBTrue:
		return true, true
	}
	return false, false
}
