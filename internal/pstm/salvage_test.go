package pstm

import (
	"testing"

	"repro/internal/memory"
)

func salvageMeta() Meta {
	return Meta{
		Data:    memory.PersistentBase,
		Words:   4,
		TxnID:   memory.PersistentBase + 64,
		Done:    memory.PersistentBase + 72,
		Undo:    memory.PersistentBase + 128,
		UndoCap: 4,
	}
}

func writeUndoRecord(im *memory.Image, meta Meta, txn uint64, slot int, word, old uint64) {
	base := meta.Undo + memory.Addr(slot*recordBytes)
	im.WriteWord(base, word)
	im.WriteWord(base+8, old)
	im.WriteWord(base+16, recChecksum(txn, slot, word, old))
}

// salvageImage models a crash mid-transaction: txn 5 is armed but not
// sealed, has logged undo records for words 1 and 2 (old values 0xAA,
// 0xBB), and has overwritten both in place.
func salvageImage() (*memory.Image, Meta) {
	meta := salvageMeta()
	im := memory.NewImage()
	for i := 0; i < meta.Words; i++ {
		im.WriteWord(meta.Data+memory.Addr(i*8), uint64(0x100+i))
	}
	im.WriteWord(meta.TxnID, 5)
	im.WriteWord(meta.Done, 4)
	writeUndoRecord(im, meta, 5, 0, 1, 0xAA)
	writeUndoRecord(im, meta, 5, 1, 2, 0xBB)
	return im, meta
}

func TestPSTMSalvageTable(t *testing.T) {
	cases := []struct {
		name       string
		corrupt    func(im *memory.Image, meta Meta)
		undone     int
		quarantine int
		header     bool
		detected   bool
		wantWords  map[int]uint64
	}{
		{
			name:      "clean rollback of both records",
			corrupt:   func(*memory.Image, Meta) {},
			undone:    2,
			wantWords: map[int]uint64{1: 0xAA, 2: 0xBB},
		},
		{
			name: "torn first record quarantined, later record still undone",
			corrupt: func(im *memory.Image, meta Meta) {
				// Clobber record 0's old-value word; record 1 still
				// validates, proving record 0 is torn, not the frontier.
				im.WriteWord(meta.Undo+8, 0xFFFF)
			},
			undone:     1,
			quarantine: 1,
			detected:   true,
			wantWords:  map[int]uint64{1: 0x101, 2: 0xBB},
		},
		{
			name: "poisoned record below frontier quarantined",
			corrupt: func(im *memory.Image, meta Meta) {
				im.Poison(meta.Undo + 16)
			},
			undone:     1,
			quarantine: 1,
			detected:   true,
			wantWords:  map[int]uint64{1: 0x101, 2: 0xBB},
		},
		{
			name: "sealed transaction needs no rollback",
			corrupt: func(im *memory.Image, meta Meta) {
				im.WriteWord(meta.Done, 5)
			},
			wantWords: map[int]uint64{1: 0x101, 2: 0x102},
		},
		{
			name: "poisoned armed word quarantines header",
			corrupt: func(im *memory.Image, meta Meta) {
				im.Poison(meta.TxnID)
			},
			header:   true,
			detected: true,
		},
		{
			name: "seal ahead of armed id quarantines header",
			corrupt: func(im *memory.Image, meta Meta) {
				im.WriteWord(meta.Done, 9)
			},
			header:   true,
			detected: true,
		},
		{
			name: "valid checksum over out-of-range word quarantined",
			corrupt: func(im *memory.Image, meta Meta) {
				writeUndoRecord(im, meta, 5, 1, 99, 0xBB)
			},
			undone:     1,
			quarantine: 1,
			detected:   true,
			wantWords:  map[int]uint64{1: 0xAA},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			im, meta := salvageImage()
			tc.corrupt(im, meta)
			st, rep, err := RecoverSalvage(im, meta)
			if err != nil {
				t.Fatal(err)
			}
			if st.Undone != tc.undone || rep.Recovered != tc.undone {
				t.Fatalf("undone %d (report %d), want %d\nreport: %s",
					st.Undone, rep.Recovered, tc.undone, rep.String())
			}
			if rep.Quarantined != tc.quarantine || rep.HeaderQuarantined != tc.header {
				t.Fatalf("report %s, want quarantined=%d header=%v",
					rep.String(), tc.quarantine, tc.header)
			}
			if rep.Detected() != tc.detected {
				t.Fatalf("Detected() = %v, want %v (%s)", rep.Detected(), tc.detected, rep.String())
			}
			for w, v := range tc.wantWords {
				if st.Words[w] != v {
					t.Fatalf("word %d = %#x, want %#x", w, st.Words[w], v)
				}
			}
		})
	}
}

// TestPSTMSalvageMatchesRecoverOnCleanImages pins the baseline-clean
// invariant: wherever strict Recover succeeds, salvage rolls back to
// the same state with a clean report.
func TestPSTMSalvageMatchesRecoverOnCleanImages(t *testing.T) {
	im, meta := salvageImage()
	strict, err := Recover(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	soft, rep, err := RecoverSalvage(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected() {
		t.Fatalf("clean image produced dirty report: %s", rep.String())
	}
	if strict.Undone != soft.Undone || strict.RolledBack != soft.RolledBack {
		t.Fatalf("strict %+v vs salvage %+v", strict, soft)
	}
	for i := range strict.Words {
		if strict.Words[i] != soft.Words[i] {
			t.Fatalf("word %d: strict %#x, salvage %#x", i, strict.Words[i], soft.Words[i])
		}
	}
}
