package pstm

import (
	"errors"
	"fmt"

	"repro/internal/memory"
)

// Recovery: if the armed transaction id is not sealed, roll back its
// valid undo records. Records are self-validating; a record whose
// checksum fails marks the arming frontier (nothing at or beyond it
// reached the in-place stage, because each in-place store is ordered
// after its record by a barrier).

// State is the recovered heap.
type State struct {
	// Words holds the recovered data.
	Words []uint64
	// RolledBack reports whether an unsealed transaction was undone.
	RolledBack bool
	// Undone counts rolled-back records.
	Undone int
}

// CorruptionError reports a recovery-correctness violation.
type CorruptionError struct {
	Reason string
}

// Error implements error.
func (e *CorruptionError) Error() string { return "pstm: corrupt: " + e.Reason }

// IsCorruption reports whether err is a pstm corruption.
func IsCorruption(err error) bool {
	var ce *CorruptionError
	return errors.As(err, &ce)
}

// Recover rebuilds the heap from a post-crash image.
func Recover(im *memory.Image, meta Meta) (*State, error) {
	if meta.Words <= 0 || meta.UndoCap <= 0 {
		return nil, fmt.Errorf("pstm: bad recovery metadata")
	}
	st := &State{Words: make([]uint64, meta.Words)}
	for i := 0; i < meta.Words; i++ {
		st.Words[i] = im.ReadWord(meta.Data + memory.Addr(i*8))
	}
	armed := im.ReadWord(meta.TxnID)
	done := im.ReadWord(meta.Done)
	if done > armed {
		return nil, &CorruptionError{Reason: fmt.Sprintf("seal %d beyond armed id %d", done, armed)}
	}
	if armed == 0 || done == armed {
		return st, nil // nothing in flight, or it committed
	}
	// Roll back transaction `armed` from its valid record prefix,
	// newest first.
	var recs [][2]uint64 // (word, old)
	for k := 0; k < meta.UndoCap; k++ {
		rec := meta.Undo + memory.Addr(k*recordBytes)
		w := im.ReadWord(rec)
		old := im.ReadWord(rec + 8)
		if im.ReadWord(rec+16) != recChecksum(armed, k, w, old) {
			break // arming frontier
		}
		if w >= uint64(meta.Words) {
			return nil, &CorruptionError{Reason: fmt.Sprintf("undo record %d targets word %d out of range", k, w)}
		}
		recs = append(recs, [2]uint64{w, old})
	}
	for k := len(recs) - 1; k >= 0; k-- {
		st.Words[recs[k][0]] = recs[k][1]
	}
	st.RolledBack = len(recs) > 0
	st.Undone = len(recs)
	return st, nil
}
