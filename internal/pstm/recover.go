package pstm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/durable"
	"repro/internal/memory"
)

// Recovery: if the armed transaction id is not sealed, roll back its
// valid undo records. Records are self-validating; a record whose
// checksum fails marks the arming frontier (nothing at or beyond it
// reached the in-place stage, because each in-place store is ordered
// after its record by a barrier).

// State is the recovered heap.
type State struct {
	// Words holds the recovered data.
	Words []uint64
	// RolledBack reports whether an unsealed transaction was undone.
	RolledBack bool
	// Undone counts rolled-back records.
	Undone int
}

// CorruptionError reports a recovery-correctness violation.
type CorruptionError struct {
	Reason string
}

// Error implements error.
func (e *CorruptionError) Error() string { return "pstm: corrupt: " + e.Reason }

// IsCorruption reports whether err is a pstm corruption.
func IsCorruption(err error) bool {
	var ce *CorruptionError
	return errors.As(err, &ce)
}

// Recover rebuilds the heap from a post-crash image.
func Recover(im *memory.Image, meta Meta) (*State, error) {
	if meta.Words <= 0 || meta.UndoCap <= 0 {
		return nil, fmt.Errorf("pstm: bad recovery metadata")
	}
	st := &State{Words: make([]uint64, meta.Words)}
	for i := 0; i < meta.Words; i++ {
		st.Words[i] = im.ReadWord(meta.Data + memory.Addr(i*8))
	}
	var armed, done uint64
	count := -1 // integrity: explicit record count; legacy: scan frontier
	if meta.Integrity {
		// Strict recovery verifies clean crash states: any integrity
		// detection in the arm or seal words is itself a violation here.
		ar := durable.ReadWord(im, meta.TxnID)
		dr := durable.ReadWord(im, meta.Done)
		if !ar.OK || ar.Detected() {
			return nil, &CorruptionError{Reason: "armed word corrupt"}
		}
		if !dr.OK || dr.Detected() {
			return nil, &CorruptionError{Reason: "seal word corrupt"}
		}
		armed, count = armedSplit(ar.Val)
		done = dr.Val
		if count > meta.UndoCap {
			return nil, &CorruptionError{Reason: fmt.Sprintf("record count %d exceeds undo capacity %d", count, meta.UndoCap)}
		}
	} else {
		armed = im.ReadWord(meta.TxnID)
		done = im.ReadWord(meta.Done)
	}
	if done > armed {
		return nil, &CorruptionError{Reason: fmt.Sprintf("seal %d beyond armed id %d", done, armed)}
	}
	rolledBack := make([]bool, meta.Words)
	if armed != 0 && done != armed {
		// Roll back transaction `armed`, newest record first. The legacy
		// format stops at the first invalid checksum (the arming
		// frontier); the integrity format knows the exact record count,
		// so every frame below it must open — an unopenable one is
		// detected corruption, never a frontier.
		limit := meta.UndoCap
		if count >= 0 {
			limit = count
		}
		var recs [][2]uint64 // (word, old)
		for k := 0; k < limit; k++ {
			rec := meta.Undo + memory.Addr(k*recordBytes)
			var w, old uint64
			if meta.Integrity {
				payload, ok := durable.OpenFrame(im, rec, recSalt(armed, k), recordPayloadBytes)
				if !ok || len(payload) != recordPayloadBytes {
					return nil, &CorruptionError{Reason: fmt.Sprintf("undo record %d below count %d fails its frame CRC", k, count)}
				}
				w = binary.LittleEndian.Uint64(payload[0:8])
				old = binary.LittleEndian.Uint64(payload[8:16])
			} else {
				w = im.ReadWord(rec)
				old = im.ReadWord(rec + 8)
				if im.ReadWord(rec+16) != recChecksum(armed, k, w, old) {
					break // arming frontier
				}
			}
			if w >= uint64(meta.Words) {
				return nil, &CorruptionError{Reason: fmt.Sprintf("undo record %d targets word %d out of range", k, w)}
			}
			recs = append(recs, [2]uint64{w, old})
		}
		for k := len(recs) - 1; k >= 0; k-- {
			st.Words[recs[k][0]] = recs[k][1]
			rolledBack[recs[k][0]] = true
		}
		st.RolledBack = len(recs) > 0
		st.Undone = len(recs)
	}
	if meta.Integrity {
		// Every word the in-flight transaction did not touch must match
		// its shadow checksum: the shadow is written next to each
		// in-place store, and a sealed transaction bound both before its
		// seal. (Rolled-back words were restored from verified frames;
		// their in-place state is legitimately mid-flight.)
		for i := 0; i < meta.Words; i++ {
			if rolledBack[i] {
				continue
			}
			if shadowMismatch(im, meta, i) {
				return nil, &CorruptionError{Reason: fmt.Sprintf("data word %d shadow checksum mismatch", i)}
			}
		}
	}
	return st, nil
}

// shadowMismatch reports whether data word i fails its shadow
// checksum. A zero word with a zero shadow is the never-written
// initial state and passes.
func shadowMismatch(im *memory.Image, meta Meta, i int) bool {
	a := meta.Data + memory.Addr(i*8)
	v := im.ReadWord(a)
	shadow := im.ReadWord(meta.ShadowCRC + memory.Addr(i*8))
	if shadow == 0 && v == 0 {
		return false
	}
	return shadow != durable.ChecksumWord(uint64(a), v)
}
