// Package pstm layers durable transactions on top of the persistency
// API — the direction the paper's related work surveys ("transactions
// are a common and powerful paradigm for handling both concurrency
// control and durability, so many authors have proposed layering
// transactions on top of nonvolatile memory", §9; Mnemosyne, NV-heaps,
// Kiln). It is a word-granular undo-log STM:
//
//   - the first write to each word in a transaction persists an undo
//     record (index, old value), then a persist barrier orders the
//     record before the in-place update;
//   - updates happen in place, so reads trivially see own writes;
//   - commit persists all in-place updates (barrier), then seals the
//     transaction by persisting its id into a single Done word — the
//     strong-persist-atomicity commit point used throughout this
//     reproduction;
//   - recovery rolls back an unsealed transaction from its undo
//     records, which are self-validating (checksums bound to the
//     transaction id and slot), and leaves sealed transactions alone.
//
// Annotation disciplines mirror the other workloads. As with the
// journal, the racing-epochs discipline is unsafe: a new transaction's
// undo records overwrite the previous transaction's slots and must be
// ordered after its seal, which only the barriers around the lock
// provide. Strand persistency uses §5.3's read-then-barrier recipe on
// the Done word.
package pstm

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/locks"
	"repro/internal/memory"
)

// Policy selects the annotation discipline.
type Policy uint8

const (
	// PolicyStrict emits no annotations.
	PolicyStrict Policy = iota
	// PolicyEpoch uses persist barriers around the lock and between
	// transaction stages.
	PolicyEpoch
	// PolicyRacingEpoch drops the barriers around the lock (unsafe for
	// this structure; for negative tests).
	PolicyRacingEpoch
	// PolicyStrand runs each transaction in its own persist strand.
	PolicyStrand
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyStrict:
		return "strict"
	case PolicyEpoch:
		return "epoch"
	case PolicyRacingEpoch:
		return "racing-epochs"
	case PolicyStrand:
		return "strand"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Policies lists the annotation disciplines.
var Policies = []Policy{PolicyStrict, PolicyEpoch, PolicyRacingEpoch, PolicyStrand}

const (
	// recordBytes is one undo slot: word index, old value, checksum,
	// padded to half a line.
	recordBytes = 32
)

// Config parameterizes a Heap.
type Config struct {
	// Words is the persistent data array size (8-byte words).
	Words int
	// UndoCap bounds the write set of one transaction.
	UndoCap int
	// Policy selects annotations.
	Policy Policy
}

// Meta locates the persistent structures for recovery.
type Meta struct {
	Data  memory.Addr
	Words int
	// TxnID is the persistent word holding the armed transaction id.
	TxnID memory.Addr
	// Done is the persistent seal: holds the id of the last committed
	// transaction.
	Done memory.Addr
	// Undo is the undo record array.
	Undo    memory.Addr
	UndoCap int
}

// Heap is a durable-transactional array of words.
type Heap struct {
	cfg  Config
	meta Meta
	lock locks.Lock
	// seqV is the volatile transaction id counter.
	seqV memory.Addr
}

// New allocates and initializes a Heap via a setup thread.
func New(s *exec.Thread, cfg Config) (*Heap, error) {
	if cfg.Words <= 0 {
		return nil, fmt.Errorf("pstm: need at least one word")
	}
	if cfg.UndoCap <= 0 {
		cfg.UndoCap = 16
	}
	h := &Heap{cfg: cfg}
	h.meta = Meta{
		Data:    s.MallocPersistent(cfg.Words*8, 64),
		Words:   cfg.Words,
		TxnID:   s.MallocPersistent(8, 64),
		Done:    s.MallocPersistent(8, 64),
		Undo:    s.MallocPersistent(cfg.UndoCap*recordBytes, 64),
		UndoCap: cfg.UndoCap,
	}
	s.Store8(h.meta.TxnID, 0)
	s.Store8(h.meta.Done, 0)
	s.PersistBarrier()
	h.lock = locks.NewMCS(s)
	h.seqV = s.MallocVolatile(8, 64)
	s.Store8(h.seqV, 0)
	return h, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(s *exec.Thread, cfg Config) *Heap {
	h, err := New(s, cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Meta returns the persistent layout for recovery.
func (h *Heap) Meta() Meta { return h.meta }

func (h *Heap) barrierOuter(t *exec.Thread) {
	if h.cfg.Policy != PolicyStrict {
		t.PersistBarrier()
	}
}

func (h *Heap) barrierInner(t *exec.Thread) {
	if h.cfg.Policy == PolicyEpoch || h.cfg.Policy == PolicyStrand {
		t.PersistBarrier()
	}
}

func (h *Heap) barrierStage(t *exec.Thread) {
	if h.cfg.Policy != PolicyStrict {
		t.PersistBarrier()
	}
}

// Tx is one durable transaction. Use it only inside Atomic's body.
type Tx struct {
	h       *Heap
	t       *exec.Thread
	id      uint64
	written map[int]bool
	n       int
	aborted bool
}

// Load reads word i, seeing the transaction's own writes.
func (tx *Tx) Load(i int) uint64 {
	tx.check(i)
	return tx.t.Load8(tx.h.meta.Data + memory.Addr(i*8))
}

// Store writes word i. The first write to each word persists an undo
// record before the in-place update.
func (tx *Tx) Store(i int, v uint64) {
	tx.check(i)
	if !tx.written[i] {
		if tx.n >= tx.h.cfg.UndoCap {
			panic(fmt.Sprintf("pstm: transaction exceeds UndoCap %d", tx.h.cfg.UndoCap))
		}
		old := tx.t.Load8(tx.h.meta.Data + memory.Addr(i*8))
		rec := tx.h.meta.Undo + memory.Addr(tx.n*recordBytes)
		tx.t.Store8(rec, uint64(i))
		tx.t.Store8(rec+8, old)
		tx.t.Store8(rec+16, recChecksum(tx.id, tx.n, uint64(i), old))
		// The record must persist before the in-place update it makes
		// undoable.
		tx.h.barrierStage(tx.t)
		tx.written[i] = true
		tx.n++
	}
	tx.t.Store8(tx.h.meta.Data+memory.Addr(i*8), v)
}

// Abort rolls the transaction back in place and marks it aborted; the
// enclosing Atomic returns false.
func (tx *Tx) Abort() {
	tx.aborted = true
}

func (tx *Tx) check(i int) {
	if i < 0 || i >= tx.h.cfg.Words {
		panic(fmt.Sprintf("pstm: word %d out of range", i))
	}
}

// Atomic runs fn as one durable transaction and reports whether it
// committed (false when fn called Abort). Transactions serialize on
// the heap's lock.
func (h *Heap) Atomic(t *exec.Thread, fn func(tx *Tx)) bool {
	h.barrierOuter(t)
	h.lock.Acquire(t)
	id := t.Add8(h.seqV, 1)
	h.barrierInner(t)
	if h.cfg.Policy == PolicyStrand {
		t.NewStrand()
		// §5.3: this transaction's persists (records overwrite the
		// previous transaction's slots; the arm and seal words chain)
		// must follow the previous seal.
		t.Load8(h.meta.Done)
		t.PersistBarrier()
	}

	// Arm: the transaction id validates this transaction's records.
	t.Store8(h.meta.TxnID, id)
	h.barrierStage(t) // arm before records and updates

	tx := &Tx{h: h, t: t, id: id, written: make(map[int]bool)}
	fn(tx)

	if tx.aborted {
		// Roll back in place (reverse order; each word recorded once).
		for k := tx.n - 1; k >= 0; k-- {
			rec := h.meta.Undo + memory.Addr(k*recordBytes)
			w := t.Load8(rec)
			old := t.Load8(rec + 8)
			t.Store8(h.meta.Data+memory.Addr(w*8), old)
		}
	}
	// Updates (or the rollback) must persist before the seal declares
	// the transaction finished.
	h.barrierStage(t)
	t.Store8(h.meta.Done, id) // commit point: single-word seal
	h.barrierInner(t)
	h.lock.Release(t)
	h.barrierOuter(t)
	return !tx.aborted
}

// recChecksum binds an undo record to its transaction and slot.
func recChecksum(txn uint64, slot int, word, old uint64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(txn)
	mix(uint64(slot))
	mix(word)
	mix(old)
	return h
}
