// Package pstm layers durable transactions on top of the persistency
// API — the direction the paper's related work surveys ("transactions
// are a common and powerful paradigm for handling both concurrency
// control and durability, so many authors have proposed layering
// transactions on top of nonvolatile memory", §9; Mnemosyne, NV-heaps,
// Kiln). It is a word-granular undo-log STM:
//
//   - the first write to each word in a transaction persists an undo
//     record (index, old value), then a persist barrier orders the
//     record before the in-place update;
//   - updates happen in place, so reads trivially see own writes;
//   - commit persists all in-place updates (barrier), then seals the
//     transaction by persisting its id into a single Done word — the
//     strong-persist-atomicity commit point used throughout this
//     reproduction;
//   - recovery rolls back an unsealed transaction from its undo
//     records, which are self-validating (checksums bound to the
//     transaction id and slot), and leaves sealed transactions alone.
//
// Annotation disciplines mirror the other workloads. As with the
// journal, the racing-epochs discipline is unsafe: a new transaction's
// undo records overwrite the previous transaction's slots and must be
// ordered after its seal, which only the barriers around the lock
// provide. Strand persistency uses §5.3's read-then-barrier recipe on
// the Done word.
package pstm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/durable"
	"repro/internal/exec"
	"repro/internal/locks"
	"repro/internal/memory"
)

// Policy selects the annotation discipline.
type Policy uint8

const (
	// PolicyStrict emits no annotations.
	PolicyStrict Policy = iota
	// PolicyEpoch uses persist barriers around the lock and between
	// transaction stages.
	PolicyEpoch
	// PolicyRacingEpoch drops the barriers around the lock (unsafe for
	// this structure; for negative tests).
	PolicyRacingEpoch
	// PolicyStrand runs each transaction in its own persist strand.
	PolicyStrand
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyStrict:
		return "strict"
	case PolicyEpoch:
		return "epoch"
	case PolicyRacingEpoch:
		return "racing-epochs"
	case PolicyStrand:
		return "strand"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Policies lists the annotation disciplines.
var Policies = []Policy{PolicyStrict, PolicyEpoch, PolicyRacingEpoch, PolicyStrand}

const (
	// recordBytes is one undo slot: word index, old value, checksum,
	// padded to half a line. The integrity format reuses the same slot
	// size: an 8-byte length word, the 16-byte (index, old) payload, and
	// a CRC64 trailer bound to the transaction id and slot.
	recordBytes = 32
	// recordPayloadBytes is the framed undo payload: word index and old
	// value, little-endian.
	recordPayloadBytes = 16
)

// recSalt binds an integrity undo frame to its transaction and slot,
// the same role recChecksum's (txn, slot) inputs play for the legacy
// format: a stale record from an earlier transaction in a reused slot
// fails to open.
func recSalt(txn uint64, slot int) uint64 {
	return durable.ChecksumWord(txn, uint64(slot))
}

// The legacy format finds the arming frontier by scanning for the
// first record that fails its checksum — which makes a bit flip in the
// armed transaction's newest record indistinguishable from the
// frontier, the documented silent-corruption hole. The integrity
// format closes it by making the frontier explicit: the armed durable
// word carries the record count alongside the id, advanced only after
// each record's frame is bound and before its in-place update. Any
// frame below the count that fails to open is then detected
// corruption, never a frontier.
const armCountBits = 16

// armedVal packs a transaction id and its sealed-record count into the
// armed word's integrity encoding.
func armedVal(id uint64, n int) uint64 { return id<<armCountBits | uint64(n) }

// armedSplit undoes armedVal.
func armedSplit(v uint64) (id uint64, n int) {
	return v >> armCountBits, int(v & (1<<armCountBits - 1))
}

// Config parameterizes a Heap.
type Config struct {
	// Words is the persistent data array size (8-byte words).
	Words int
	// UndoCap bounds the write set of one transaction.
	UndoCap int
	// Policy selects annotations.
	Policy Policy
	// Integrity enables the corruption-detecting durable format
	// (internal/durable): the arm and seal words become dual-copy
	// durable words behind corruption-detecting booleans, undo records
	// are CRC64-framed, and every data word keeps a shadow checksum.
	// Costs extra persists per transaction; recovery then detects (and
	// where possible rides out) silent media corruption instead of
	// trusting it.
	Integrity bool
}

// Meta locates the persistent structures for recovery.
type Meta struct {
	Data  memory.Addr
	Words int
	// TxnID is the persistent word holding the armed transaction id.
	// With Integrity it is the base of a durable.Word (40 bytes).
	TxnID memory.Addr
	// Done is the persistent seal: holds the id of the last committed
	// transaction. With Integrity it is a durable.Word base.
	Done memory.Addr
	// Undo is the undo record array.
	Undo    memory.Addr
	UndoCap int
	// Integrity mirrors Config.Integrity for recovery.
	Integrity bool
	// ShadowCRC is the per-data-word shadow checksum array (Integrity
	// only): word i's checksum, salted with its address, lives at
	// ShadowCRC + i*8 and is written alongside every in-place store.
	ShadowCRC memory.Addr
}

// Heap is a durable-transactional array of words.
type Heap struct {
	cfg  Config
	meta Meta
	lock locks.Lock
	// seqV is the volatile transaction id counter.
	seqV memory.Addr
}

// New allocates and initializes a Heap via a setup thread.
func New(s *exec.Thread, cfg Config) (*Heap, error) {
	if cfg.Words <= 0 {
		return nil, fmt.Errorf("pstm: need at least one word")
	}
	if cfg.UndoCap <= 0 {
		cfg.UndoCap = 16
	}
	if cfg.Integrity && cfg.UndoCap >= 1<<armCountBits {
		return nil, fmt.Errorf("pstm: UndoCap %d exceeds the armed word's count field", cfg.UndoCap)
	}
	h := &Heap{cfg: cfg}
	ptrBytes := int(memory.WordSize)
	if cfg.Integrity {
		ptrBytes = durable.WordBytes
	}
	h.meta = Meta{
		Data:      s.MallocPersistent(cfg.Words*8, 64),
		Words:     cfg.Words,
		TxnID:     s.MallocPersistent(ptrBytes, 64),
		Done:      s.MallocPersistent(ptrBytes, 64),
		Undo:      s.MallocPersistent(cfg.UndoCap*recordBytes, 64),
		UndoCap:   cfg.UndoCap,
		Integrity: cfg.Integrity,
	}
	if cfg.Integrity {
		// Shadow checksums come last so the earlier offsets match the
		// plain layout. Zero shadows over zero data words are the valid
		// never-written initial state, so no seeding is needed.
		h.meta.ShadowCRC = s.MallocPersistent(cfg.Words*8, 64)
		durable.Word{Base: h.meta.TxnID}.Init(s, 0)
		durable.Word{Base: h.meta.Done}.Init(s, 0)
	} else {
		s.Store8(h.meta.TxnID, 0)
		s.Store8(h.meta.Done, 0)
	}
	s.PersistBarrier()
	h.lock = locks.NewMCS(s)
	h.seqV = s.MallocVolatile(8, 64)
	s.Store8(h.seqV, 0)
	return h, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(s *exec.Thread, cfg Config) *Heap {
	h, err := New(s, cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Meta returns the persistent layout for recovery.
func (h *Heap) Meta() Meta { return h.meta }

func (h *Heap) relaxed() bool { return h.cfg.Policy != PolicyStrict }

func (h *Heap) storeTxnID(t *exec.Thread, v uint64) {
	if h.cfg.Integrity {
		durable.Word{Base: h.meta.TxnID}.Store(t, v, h.relaxed())
		return
	}
	t.Store8(h.meta.TxnID, v)
}

func (h *Heap) storeDone(t *exec.Thread, v uint64) {
	if h.cfg.Integrity {
		durable.Word{Base: h.meta.Done}.Store(t, v, h.relaxed())
		return
	}
	t.Store8(h.meta.Done, v)
}

// storeData writes data word i in place, keeping its shadow checksum
// current under the integrity format. Both stores sit between the same
// barriers, so wherever the in-place update is bound, so is its shadow.
func (h *Heap) storeData(t *exec.Thread, i uint64, v uint64) {
	a := h.meta.Data + memory.Addr(i*8)
	t.Store8(a, v)
	if h.cfg.Integrity {
		t.Store8(h.meta.ShadowCRC+memory.Addr(i*8), durable.ChecksumWord(uint64(a), v))
	}
}

func (h *Heap) barrierOuter(t *exec.Thread) {
	if h.cfg.Policy != PolicyStrict {
		t.PersistBarrier()
	}
}

func (h *Heap) barrierInner(t *exec.Thread) {
	if h.cfg.Policy == PolicyEpoch || h.cfg.Policy == PolicyStrand {
		t.PersistBarrier()
	}
}

func (h *Heap) barrierStage(t *exec.Thread) {
	if h.cfg.Policy != PolicyStrict {
		t.PersistBarrier()
	}
}

// Tx is one durable transaction. Use it only inside Atomic's body.
type Tx struct {
	h       *Heap
	t       *exec.Thread
	id      uint64
	written map[int]bool
	n       int
	aborted bool
}

// Load reads word i, seeing the transaction's own writes.
func (tx *Tx) Load(i int) uint64 {
	tx.check(i)
	return tx.t.Load8(tx.h.meta.Data + memory.Addr(i*8))
}

// Store writes word i. The first write to each word persists an undo
// record before the in-place update.
func (tx *Tx) Store(i int, v uint64) {
	tx.check(i)
	if !tx.written[i] {
		if tx.n >= tx.h.cfg.UndoCap {
			panic(fmt.Sprintf("pstm: transaction exceeds UndoCap %d", tx.h.cfg.UndoCap))
		}
		old := tx.t.Load8(tx.h.meta.Data + memory.Addr(i*8))
		rec := tx.h.meta.Undo + memory.Addr(tx.n*recordBytes)
		if tx.h.cfg.Integrity {
			var payload [recordPayloadBytes]byte
			binary.LittleEndian.PutUint64(payload[0:8], uint64(i))
			binary.LittleEndian.PutUint64(payload[8:16], old)
			durable.SealFrame(tx.t, rec, recSalt(tx.id, tx.n), payload[:])
		} else {
			tx.t.Store8(rec, uint64(i))
			tx.t.Store8(rec+8, old)
			tx.t.Store8(rec+16, recChecksum(tx.id, tx.n, uint64(i), old))
		}
		// The record must persist before the in-place update it makes
		// undoable.
		tx.h.barrierStage(tx.t)
		tx.written[i] = true
		tx.n++
		if tx.h.cfg.Integrity {
			// Advance the explicit frontier: the count moves only after
			// the record is bound and before the in-place update it
			// covers, so recovery never has to guess where records end.
			tx.h.storeTxnID(tx.t, armedVal(tx.id, tx.n))
			tx.h.barrierStage(tx.t)
		}
	}
	tx.h.storeData(tx.t, uint64(i), v)
}

// Abort rolls the transaction back in place and marks it aborted; the
// enclosing Atomic returns false.
func (tx *Tx) Abort() {
	tx.aborted = true
}

func (tx *Tx) check(i int) {
	if i < 0 || i >= tx.h.cfg.Words {
		panic(fmt.Sprintf("pstm: word %d out of range", i))
	}
}

// Atomic runs fn as one durable transaction and reports whether it
// committed (false when fn called Abort). Transactions serialize on
// the heap's lock.
func (h *Heap) Atomic(t *exec.Thread, fn func(tx *Tx)) bool {
	h.barrierOuter(t)
	h.lock.Acquire(t)
	id := t.Add8(h.seqV, 1)
	h.barrierInner(t)
	if h.cfg.Policy == PolicyStrand {
		t.NewStrand()
		// §5.3: this transaction's persists (records overwrite the
		// previous transaction's slots; the arm and seal words chain)
		// must follow the previous seal.
		t.Load8(h.meta.Done)
		t.PersistBarrier()
	}

	// Arm: the transaction id validates this transaction's records.
	armID := id
	if h.cfg.Integrity {
		armID = armedVal(id, 0)
	}
	h.storeTxnID(t, armID)
	h.barrierStage(t) // arm before records and updates

	tx := &Tx{h: h, t: t, id: id, written: make(map[int]bool)}
	fn(tx)

	if tx.aborted {
		// Roll back in place (reverse order; each word recorded once).
		for k := tx.n - 1; k >= 0; k-- {
			rec := h.meta.Undo + memory.Addr(k*recordBytes)
			var w, old uint64
			if h.cfg.Integrity {
				// Framed slot: payload [index, old] starts after the
				// length word.
				w = t.Load8(rec + 8)
				old = t.Load8(rec + 16)
			} else {
				w = t.Load8(rec)
				old = t.Load8(rec + 8)
			}
			h.storeData(t, w, old)
		}
	}
	// Updates (or the rollback) must persist before the seal declares
	// the transaction finished.
	h.barrierStage(t)
	h.storeDone(t, id) // commit point: single-word seal
	h.barrierInner(t)
	h.lock.Release(t)
	h.barrierOuter(t)
	return !tx.aborted
}

// recChecksum binds an undo record to its transaction and slot.
func recChecksum(txn uint64, slot int, word, old uint64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(txn)
	mix(uint64(slot))
	mix(word)
	mix(old)
	return h
}
