package pstm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/durable"
	"repro/internal/fault"
	"repro/internal/memory"
)

// RecoverSalvage is the fault-tolerant counterpart of Recover.
//
// Plain Recover stops at the first undo record whose checksum fails
// and calls it the arming frontier — correct for clean crash states,
// where records persist strictly in slot order. A faulty device can
// tear record k while record k+1 survives; treating k as the frontier
// would silently skip k+1's rollback. RecoverSalvage therefore scans
// every slot: invalid slots *below the last valid slot* are torn
// current-transaction records (quarantined, rollback degraded to
// best-effort), while invalid slots beyond the last valid one are the
// normal arming frontier. In clean states the two scans agree exactly,
// so salvage reports are clean wherever Recover succeeds.
//
// Under the integrity format the arm and seal are durable words
// (detections land in the report), records are CRC64 frames, and every
// untouched data word is checked against its shadow checksum — a
// silent flip anywhere recovery trusts is detected rather than served.
func RecoverSalvage(im *memory.Image, meta Meta) (*State, fault.RecoveryReport, error) {
	var rep fault.RecoveryReport
	if meta.Words <= 0 || meta.UndoCap <= 0 {
		return nil, rep, fmt.Errorf("pstm: bad recovery metadata")
	}
	st := &State{Words: make([]uint64, meta.Words)}
	dataPoisoned := make([]bool, meta.Words)
	for i := 0; i < meta.Words; i++ {
		a := meta.Data + memory.Addr(i*8)
		st.Words[i] = im.ReadWord(a)
		if im.Poisoned(a) {
			rep.PoisonedWords++
			dataPoisoned[i] = true
			rep.Note("data word %d poisoned", i)
		}
	}
	rep.BytesScanned += uint64(meta.Words) * memory.WordSize

	var armed, done uint64
	count := -1 // integrity: explicit record count; legacy: scan frontier
	if meta.Integrity {
		ar := durable.ReadWord(im, meta.TxnID)
		dr := durable.ReadWord(im, meta.Done)
		ar.Absorb(&rep, "armed")
		dr.Absorb(&rep, "seal")
		armed, count = armedSplit(ar.Val)
		done = dr.Val
		if !ar.OK || !dr.OK {
			rep.HeaderQuarantined = true
			rep.Note("armed/seal words unrecoverable")
		}
		if count > meta.UndoCap {
			rep.HeaderQuarantined = true
			rep.Note("record count %d exceeds undo capacity %d", count, meta.UndoCap)
		}
	} else {
		armed = im.ReadWord(meta.TxnID)
		done = im.ReadWord(meta.Done)
		rep.BytesScanned += 2 * memory.WordSize
		if im.Poisoned(meta.TxnID) || im.Poisoned(meta.Done) {
			if im.Poisoned(meta.TxnID) {
				rep.PoisonedWords++
			}
			if im.Poisoned(meta.Done) {
				rep.PoisonedWords++
			}
			rep.HeaderQuarantined = true
			rep.Note("armed/seal words poisoned")
		}
	}
	if done > armed {
		rep.HeaderQuarantined = true
		rep.Note("seal %d beyond armed id %d", done, armed)
	}
	if rep.HeaderQuarantined {
		// No way to tell whether a transaction was in flight; the data
		// words are returned as-is, disclosed as degraded.
		return st, rep, nil
	}

	rolledBack := make([]bool, meta.Words)
	type undoRec struct {
		word, old uint64
	}
	if meta.Integrity && armed != 0 && done != armed {
		// The armed word's count says exactly how many records exist, so
		// there is no frontier to guess: every slot below it either
		// opens (rolled back) or is detected corruption (rollback
		// incomplete, disclosed).
		valid := make([]bool, count)
		recs := make([]undoRec, count)
		for k := 0; k < count; k++ {
			base := meta.Undo + memory.Addr(k*recordBytes)
			rep.BytesScanned += recordBytes
			if im.RangePoisoned(base, recordBytes) {
				rep.PoisonedWords++
				rep.Quarantined++
				rep.Note("undo record %d poisoned; rollback incomplete", k)
				continue
			}
			payload, ok := durable.OpenFrame(im, base, recSalt(armed, k), recordPayloadBytes)
			if !ok || len(payload) != recordPayloadBytes {
				rep.CRCDetected++
				rep.Quarantined++
				rep.Note("undo record %d frame CRC mismatch; rollback incomplete", k)
				continue
			}
			w := binary.LittleEndian.Uint64(payload[0:8])
			old := binary.LittleEndian.Uint64(payload[8:16])
			if w >= uint64(meta.Words) {
				rep.Quarantined++
				rep.Note("undo record %d targets word %d out of range", k, w)
				continue
			}
			valid[k], recs[k] = true, undoRec{w, old}
		}
		for k := count - 1; k >= 0; k-- {
			if valid[k] {
				st.Words[recs[k].word] = recs[k].old
				rolledBack[recs[k].word] = true
				st.Undone++
				rep.Recovered++
			}
		}
		st.RolledBack = st.Undone > 0
	} else if armed != 0 && done != armed {
		// Transaction `armed` is unsealed: collect every slot that
		// validates against it.
		valid := make([]bool, meta.UndoCap)
		recs := make([]undoRec, meta.UndoCap)
		poisoned := make([]bool, meta.UndoCap)
		last := -1
		for k := 0; k < meta.UndoCap; k++ {
			base := meta.Undo + memory.Addr(k*recordBytes)
			rep.BytesScanned += recordBytes
			if im.RangePoisoned(base, 24) {
				rep.PoisonedWords++
				poisoned[k] = true
				continue
			}
			w := im.ReadWord(base)
			old := im.ReadWord(base + 8)
			if im.ReadWord(base+16) != recChecksum(armed, k, w, old) {
				continue
			}
			if w >= uint64(meta.Words) {
				// A validating checksum over an out-of-range target is
				// corruption beyond doubt, not a frontier.
				rep.Quarantined++
				rep.Note("undo record %d targets word %d out of range", k, w)
				continue
			}
			valid[k], recs[k] = true, undoRec{w, old}
			last = k
		}
		// Slots at or below the last valid one that failed to validate
		// are torn/rotted records of the armed transaction.
		for k := 0; k < last; k++ {
			if !valid[k] {
				rep.Quarantined++
				if poisoned[k] {
					rep.Note("undo record %d poisoned; rollback incomplete", k)
				} else {
					rep.Note("undo record %d torn; rollback incomplete", k)
				}
			}
		}
		// Best-effort rollback, newest first.
		for k := last; k >= 0; k-- {
			if valid[k] {
				st.Words[recs[k].word] = recs[k].old
				rolledBack[recs[k].word] = true
				st.Undone++
				rep.Recovered++
			}
		}
		st.RolledBack = st.Undone > 0
	}

	if meta.Integrity {
		// Shadow checksums: every word the in-flight transaction did not
		// roll back must match (rolled-back words were restored from
		// verified frames; poisoned words are already disclosed).
		rep.BytesScanned += uint64(meta.Words) * memory.WordSize
		for i := 0; i < meta.Words; i++ {
			if rolledBack[i] || dataPoisoned[i] {
				continue
			}
			if im.Poisoned(meta.ShadowCRC + memory.Addr(i*8)) {
				rep.PoisonedWords++
				rep.Note("shadow word %d poisoned", i)
				continue
			}
			if shadowMismatch(im, meta, i) {
				rep.CRCDetected++
				rep.Quarantined++
				rep.Note("data word %d shadow checksum mismatch", i)
			}
		}
		// Detect-and-discard: a sealed transaction's undo records stay
		// behind in their slots — recovery deliberately ignores them.
		if armed != 0 && done == armed {
			for k := 0; k < count; k++ {
				base := meta.Undo + memory.Addr(k*recordBytes)
				if im.RangePoisoned(base, recordBytes) {
					break
				}
				if _, ok := durable.OpenFrame(im, base, recSalt(armed, k), recordPayloadBytes); !ok {
					break
				}
				rep.DiscardedRecords++
			}
		}
	}
	return st, rep, nil
}
