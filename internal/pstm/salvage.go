package pstm

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/memory"
)

// RecoverSalvage is the fault-tolerant counterpart of Recover.
//
// Plain Recover stops at the first undo record whose checksum fails
// and calls it the arming frontier — correct for clean crash states,
// where records persist strictly in slot order. A faulty device can
// tear record k while record k+1 survives; treating k as the frontier
// would silently skip k+1's rollback. RecoverSalvage therefore scans
// every slot: invalid slots *below the last valid slot* are torn
// current-transaction records (quarantined, rollback degraded to
// best-effort), while invalid slots beyond the last valid one are the
// normal arming frontier. In clean states the two scans agree exactly,
// so salvage reports are clean wherever Recover succeeds.
func RecoverSalvage(im *memory.Image, meta Meta) (*State, fault.RecoveryReport, error) {
	var rep fault.RecoveryReport
	if meta.Words <= 0 || meta.UndoCap <= 0 {
		return nil, rep, fmt.Errorf("pstm: bad recovery metadata")
	}
	st := &State{Words: make([]uint64, meta.Words)}
	for i := 0; i < meta.Words; i++ {
		a := meta.Data + memory.Addr(i*8)
		st.Words[i] = im.ReadWord(a)
		if im.Poisoned(a) {
			rep.PoisonedWords++
			rep.Note("data word %d poisoned", i)
		}
	}
	rep.BytesScanned += uint64(meta.Words) * memory.WordSize

	armed := im.ReadWord(meta.TxnID)
	done := im.ReadWord(meta.Done)
	rep.BytesScanned += 2 * memory.WordSize
	if im.Poisoned(meta.TxnID) || im.Poisoned(meta.Done) {
		if im.Poisoned(meta.TxnID) {
			rep.PoisonedWords++
		}
		if im.Poisoned(meta.Done) {
			rep.PoisonedWords++
		}
		rep.HeaderQuarantined = true
		rep.Note("armed/seal words poisoned")
	}
	if done > armed {
		rep.HeaderQuarantined = true
		rep.Note("seal %d beyond armed id %d", done, armed)
	}
	if rep.HeaderQuarantined {
		// No way to tell whether a transaction was in flight; the data
		// words are returned as-is, disclosed as degraded.
		return st, rep, nil
	}
	if armed == 0 || done == armed {
		return st, rep, nil // nothing in flight, or it committed
	}

	// Transaction `armed` is unsealed: collect every slot that
	// validates against it.
	type undoRec struct {
		word, old uint64
	}
	valid := make([]bool, meta.UndoCap)
	recs := make([]undoRec, meta.UndoCap)
	poisoned := make([]bool, meta.UndoCap)
	last := -1
	for k := 0; k < meta.UndoCap; k++ {
		base := meta.Undo + memory.Addr(k*recordBytes)
		rep.BytesScanned += recordBytes
		if im.RangePoisoned(base, 24) {
			rep.PoisonedWords++
			poisoned[k] = true
			continue
		}
		w := im.ReadWord(base)
		old := im.ReadWord(base + 8)
		if im.ReadWord(base+16) != recChecksum(armed, k, w, old) {
			continue
		}
		if w >= uint64(meta.Words) {
			// A validating checksum over an out-of-range target is
			// corruption beyond doubt, not a frontier.
			rep.Quarantined++
			rep.Note("undo record %d targets word %d out of range", k, w)
			continue
		}
		valid[k], recs[k] = true, undoRec{w, old}
		last = k
	}
	// Slots at or below the last valid one that failed to validate are
	// torn/rotted records of the armed transaction.
	for k := 0; k < last; k++ {
		if !valid[k] {
			rep.Quarantined++
			if poisoned[k] {
				rep.Note("undo record %d poisoned; rollback incomplete", k)
			} else {
				rep.Note("undo record %d torn; rollback incomplete", k)
			}
		}
	}
	// Best-effort rollback, newest first.
	for k := last; k >= 0; k-- {
		if valid[k] {
			st.Words[recs[k].word] = recs[k].old
			st.Undone++
			rep.Recovered++
		}
	}
	st.RolledBack = st.Undone > 0
	return st, rep, nil
}
