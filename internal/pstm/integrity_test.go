package pstm

import (
	"testing"

	"repro/internal/durable"
	"repro/internal/exec"
	"repro/internal/memory"
)

// buildImageFmt commits a few paired-word transactions under the chosen
// format and returns the quiescent image + meta.
func buildImageFmt(t *testing.T, integrity bool) (*memory.Image, Meta) {
	t.Helper()
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	h, err := New(s, Config{Words: 4, UndoCap: 8, Policy: PolicyEpoch, Integrity: integrity})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		h.Atomic(s, func(tx *Tx) {
			tx.Store(0, i*10)
			tx.Store(1, i*10)
		})
		h.Atomic(s, func(tx *Tx) {
			tx.Store(2, i*100)
			tx.Store(3, i*100)
		})
	}
	return m.PersistentImage(), h.Meta()
}

func TestIntegrityPSTMRoundTrip(t *testing.T) {
	im, meta := buildImageFmt(t, true)
	st, err := Recover(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{30, 30, 300, 300}
	for i, w := range want {
		if st.Words[i] != w {
			t.Fatalf("word %d = %d, want %d", i, st.Words[i], w)
		}
	}
	_, rep, err := RecoverSalvage(im, meta)
	if err != nil || rep.Detected() {
		t.Fatalf("salvage on clean image: detected=%v, err=%v\n%+v", rep.Detected(), err, rep)
	}
	// The sealed transaction's records are deliberately left behind:
	// detect-and-discard must count them, not replay them.
	if rep.DiscardedRecords != 2 {
		t.Fatalf("discarded %d records, want the sealed transaction's 2", rep.DiscardedRecords)
	}
}

func TestDataWordFlipSilentLegacyDetectedWithIntegrity(t *testing.T) {
	// A silent flip in a committed data word. The legacy heap trusts
	// in-place words unconditionally — wrong data, clean report. The
	// shadow-checksum array turns it into a detection in both recovery
	// paths.
	flip := func(im *memory.Image, meta Meta) {
		im.WriteWord(meta.Data, im.ReadWord(meta.Data)^(1<<3))
	}

	im, meta := buildImageFmt(t, false)
	flip(im, meta)
	st, err := Recover(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if st.Words[0] == 30 {
		t.Fatal("flip did not land")
	}
	_, rep, err := RecoverSalvage(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected() {
		t.Fatalf("legacy data flip unexpectedly detected: %+v", rep)
	}

	im, meta = buildImageFmt(t, true)
	flip(im, meta)
	if _, err := Recover(im, meta); !IsCorruption(err) {
		t.Fatalf("strict integrity recovery accepted a corrupt data word: %v", err)
	}
	_, rep, err = RecoverSalvage(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CRCDetected == 0 || rep.Quarantined == 0 {
		t.Fatalf("data flip not disclosed: %+v", rep)
	}
}

func TestIntegrityArmedWordFlipDetected(t *testing.T) {
	// Corrupting the active copy of the armed durable word fails its
	// CRC; salvage falls back to the other copy and reports it.
	im, meta := buildImageFmt(t, true)
	active, ok := durable.DecodeCDB(im.ReadWord(meta.TxnID))
	if !ok {
		t.Fatal("quiescent CDB does not decode")
	}
	valOff := memory.Addr(8)
	if active {
		valOff = 24
	}
	a := meta.TxnID + valOff
	im.WriteWord(a, im.ReadWord(a)^(1<<40))
	if _, err := Recover(im, meta); !IsCorruption(err) {
		t.Fatalf("strict recovery accepted a corrupt armed word: %v", err)
	}
	st, rep, err := RecoverSalvage(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CRCDetected == 0 {
		t.Fatalf("armed word flip not detected: %+v", rep)
	}
	for i, w := range []uint64{30, 30, 300, 300} {
		if st.Words[i] != w {
			t.Fatalf("fallback recovery corrupted word %d: %d, want %d", i, st.Words[i], w)
		}
	}
}

func TestIntegrityUndoFrameFlipBelowCountDetected(t *testing.T) {
	// Mid-transaction crash state, hand-armed: the armed word's record
	// count says two records exist, so a flip inside either frame is
	// detected corruption — never mistaken for the arming frontier (the
	// hole the explicit count closes).
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	h, err := New(s, Config{Words: 4, UndoCap: 8, Policy: PolicyEpoch, Integrity: true})
	if err != nil {
		t.Fatal(err)
	}
	h.Atomic(s, func(tx *Tx) {
		tx.Store(0, 7)
		tx.Store(1, 7)
	})
	im, meta := m.PersistentImage(), h.Meta()
	// Re-arm transaction 1 as unsealed with both records bound: seal
	// word back to zero, armed word to id 1 with count 2.
	aw := durable.Word{Base: meta.TxnID}
	dw := durable.Word{Base: meta.Done}
	writeDurable := func(w durable.Word, v uint64) {
		im.WriteWord(w.Base+8, v)
		im.WriteWord(w.Base+16, durable.ChecksumWord(uint64(w.Base+8), v))
		im.WriteWord(w.Base+24, v)
		im.WriteWord(w.Base+32, durable.ChecksumWord(uint64(w.Base+24), v))
		im.WriteWord(w.Base, durable.CDBFalse)
	}
	writeDurable(dw, 0)
	writeDurable(aw, armedVal(1, 2))
	// Flip one bit inside the newest undo frame's payload.
	a := meta.Undo + memory.Addr(recordBytes) + 8
	im.WriteWord(a, im.ReadWord(a)^(1<<9))
	if _, err := Recover(im, meta); !IsCorruption(err) {
		t.Fatalf("strict recovery treated a corrupt frame below count as a frontier: %v", err)
	}
	_, rep, err := RecoverSalvage(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CRCDetected == 0 || rep.Quarantined == 0 {
		t.Fatalf("frame flip below count not disclosed: %+v", rep)
	}
}
