package pstm

import (
	"repro/internal/durable"
	"repro/internal/memory"
	"repro/internal/persistcheck"
)

// Checks declares the heap's recovery-critical metadata for the
// persistency checker (internal/persistcheck).
//
// The Done seal publishes the issuing thread's transaction: recovery
// trusts sealed transactions and leaves their in-place updates alone,
// so the seal persist must be ordered after the transaction's arm,
// undo-record, and in-place persists (the pre-seal barrierStage).
// Transactions are lock-serialized and each thread seals its own, so
// plain same-thread publication scope is exact.
//
// The TxnID arm is a cross-thread (AllThreads) publication: arming
// overwrites the previous transaction's in-flight evidence, and its
// undo slots are reused next, so the arm persist must be ordered after
// everything the previous transaction persisted — records, in-place
// updates, and its seal. A racing-epochs crash can otherwise expose a
// later armed id over a half-persisted earlier transaction, and
// recovery, seeing only the newest arm, never rolls the earlier one
// back (the torn pairs the crash tests demonstrate).
//
// The Done word is also the §5.3 OrderAfter region: a new transaction's
// records overwrite the previous transaction's undo slots, so its
// persists must stay ordered after the seal the thread observed (the
// strand recipe in Atomic).
func (m Meta) Checks() persistcheck.Annotations {
	if !m.Integrity {
		return persistcheck.Annotations{
			Pubs: []persistcheck.Publication{{
				Name: "done",
				Word: m.Done,
				Data: []persistcheck.Extent{
					{Addr: m.Data, Size: uint64(m.Words) * 8},
					{Addr: m.Undo, Size: uint64(m.UndoCap) * recordBytes},
					{Addr: m.TxnID, Size: 8},
				},
			}, {
				Name: "arm",
				Word: m.TxnID,
				Data: []persistcheck.Extent{
					{Addr: m.Data, Size: uint64(m.Words) * 8},
					{Addr: m.Undo, Size: uint64(m.UndoCap) * recordBytes},
					{Addr: m.Done, Size: 8},
				},
				AllThreads: true,
			}},
			OrderAfter: []persistcheck.Region{{
				Name: "done",
				Addr: m.Done,
				Size: 8,
			}},
		}
	}
	// Integrity layout: both control words are dual-copy durable words
	// whose copies inherit the publication obligation, and the scopes
	// widen to the shadow array — recovery trusts a sealed state only
	// because each in-place update bound its shadow alongside it.
	// Everything recovery reads is declared Protected.
	aw := durable.Word{Base: m.TxnID}
	dw := durable.Word{Base: m.Done}
	pubs := dw.Checks("done", []persistcheck.Extent{
		{Addr: m.Data, Size: uint64(m.Words) * 8},
		{Addr: m.ShadowCRC, Size: uint64(m.Words) * 8},
		{Addr: m.Undo, Size: uint64(m.UndoCap) * recordBytes},
		aw.Extent(),
	}, false, false)
	pubs = append(pubs, aw.Checks("arm", []persistcheck.Extent{
		{Addr: m.Data, Size: uint64(m.Words) * 8},
		{Addr: m.ShadowCRC, Size: uint64(m.Words) * 8},
		{Addr: m.Undo, Size: uint64(m.UndoCap) * recordBytes},
		dw.Extent(),
	}, false, true)...)
	return persistcheck.Annotations{
		Pubs: pubs,
		OrderAfter: []persistcheck.Region{{
			Name: "done",
			Addr: m.Done,
			Size: 8,
		}},
		Protected: []persistcheck.Extent{
			aw.Extent(),
			dw.Extent(),
			{Addr: m.Data, Size: uint64(m.Words) * 8},
			{Addr: m.ShadowCRC, Size: uint64(m.Words) * 8},
			{Addr: m.Undo, Size: uint64(m.UndoCap) * recordBytes},
		},
	}
}

// SiteLabel maps persist addresses to the heap's annotation sites,
// following the telemetry attribution convention.
func (m Meta) SiteLabel() func(memory.Addr) string {
	ptrSpan := memory.Addr(8)
	if m.Integrity {
		ptrSpan = durable.WordBytes
	}
	return func(a memory.Addr) string {
		switch {
		case a >= m.Data && a < m.Data+memory.Addr(m.Words*8):
			return "data"
		case a >= m.Undo && a < m.Undo+memory.Addr(uint64(m.UndoCap)*recordBytes):
			return "undo"
		case a >= m.TxnID && a < m.TxnID+ptrSpan:
			return "txn-id"
		case a >= m.Done && a < m.Done+ptrSpan:
			return "done"
		case m.Integrity && a >= m.ShadowCRC && a < m.ShadowCRC+memory.Addr(m.Words*8):
			return "shadow-crc"
		default:
			return "other"
		}
	}
}
