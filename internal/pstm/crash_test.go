package pstm

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/memory"
	"repro/internal/observer"
	"repro/internal/trace"
)

// tracePSTM runs paired-word transactions and returns the trace plus a
// recovery-and-invariant checker: both words of each pair must always
// carry the same value after recovery (transaction atomicity).
func tracePSTM(t *testing.T, pol Policy, threads, txns int, seed int64) (*trace.Trace, observer.RecoverFunc) {
	t.Helper()
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: threads, Seed: seed, Sink: tr})
	s := m.SetupThread()
	h, err := New(s, Config{Words: 2 * threads, UndoCap: 8, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	meta := h.Meta()
	m.Run(func(th *exec.Thread) {
		for i := 0; i < txns; i++ {
			h.Atomic(th, func(tx *Tx) {
				v := uint64(th.TID()*1000 + i + 1)
				tx.Store(th.TID()*2, v)
				tx.Store(th.TID()*2+1, v)
			})
		}
	})
	return tr, func(im *memory.Image) error {
		state, err := Recover(im, meta)
		if err != nil {
			return err
		}
		for g := 0; g < threads; g++ {
			if state.Words[2*g] != state.Words[2*g+1] {
				return fmt.Errorf("pair %d torn: %d vs %d", g, state.Words[2*g], state.Words[2*g+1])
			}
		}
		return nil
	}
}

func modelFor(p Policy) core.Model {
	switch p {
	case PolicyStrict:
		return core.Strict
	case PolicyStrand:
		return core.Strand
	default:
		return core.Epoch
	}
}

func TestCrashSafetyUnderTargetModels(t *testing.T) {
	for _, pol := range []Policy{PolicyStrict, PolicyEpoch, PolicyStrand} {
		for _, threads := range []int{1, 3} {
			t.Run(fmt.Sprintf("%v/%dT", pol, threads), func(t *testing.T) {
				tr, rec := tracePSTM(t, pol, threads, 5, 17)
				out, err := observer.Adversarial(tr, core.Params{Model: modelFor(pol)}, rec)
				if err != nil {
					t.Fatal(err)
				}
				if !out.AllRecovered() {
					t.Fatalf("%v", out)
				}
				// Random sampling too, for cut shapes the sweep misses.
				out, err = observer.CrashTest(tr, core.Params{Model: modelFor(pol)}, rec, observer.Config{Samples: 150, Seed: 3})
				if err != nil {
					t.Fatal(err)
				}
				if !out.AllRecovered() {
					t.Fatalf("sampled: %v", out)
				}
			})
		}
	}
}

func TestRacingEpochsUnsafeForPSTM(t *testing.T) {
	// Undo-record slots are reused across transactions; ordering the
	// reuse after the previous seal requires the barriers around the
	// lock, so the racing discipline corrupts.
	found := false
	for seed := int64(0); seed < 10 && !found; seed++ {
		tr, rec := tracePSTM(t, PolicyRacingEpoch, 3, 5, seed)
		out, err := observer.Adversarial(tr, core.Params{Model: core.Epoch}, rec)
		if err != nil {
			t.Fatal(err)
		}
		found = !out.AllRecovered()
		if !found {
			corr, err := observer.FindCorruption(tr, core.Params{Model: core.Epoch}, rec, observer.Config{Samples: 400, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			found = corr != nil
		}
	}
	if !found {
		t.Fatal("racing-epoch pstm should reach a torn state")
	}
}

func TestBrokenUndoOrderCaught(t *testing.T) {
	// Simulating Mnemosyne-style bugs: if the undo record is not
	// ordered before the in-place update, a crash tears the pair. We
	// emulate the missing barrier by running the epoch-annotated heap
	// under the EpochTSO model with multi-thread volatile-lock handoff
	// removed from conflict tracking — the cross-transaction ordering
	// evaporates.
	found := false
	for seed := int64(0); seed < 10 && !found; seed++ {
		tr, rec := tracePSTM(t, PolicyEpoch, 3, 5, seed)
		out, err := observer.Adversarial(tr, core.Params{Model: core.EpochTSO}, rec)
		if err != nil {
			t.Fatal(err)
		}
		found = !out.AllRecovered()
	}
	if !found {
		t.Skip("EpochTSO did not tear this workload on the tried seeds")
	}
}
