package pstm

import (
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/memory"
)

func newHeap(t *testing.T, words int, pol Policy) (*exec.Machine, *Heap) {
	t.Helper()
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	h, err := New(s, Config{Words: words, UndoCap: 8, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	return m, h
}

func TestAtomicBasics(t *testing.T) {
	m, h := newHeap(t, 8, PolicyEpoch)
	s := m.SetupThread()
	ok := h.Atomic(s, func(tx *Tx) {
		tx.Store(0, 100)
		tx.Store(1, 200)
		if tx.Load(0) != 100 {
			t.Error("transaction must see its own writes")
		}
	})
	if !ok {
		t.Fatal("commit reported abort")
	}
	state, err := Recover(m.PersistentImage(), h.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if state.Words[0] != 100 || state.Words[1] != 200 || state.RolledBack {
		t.Fatalf("recovered: %+v", state)
	}
}

func TestAbortRollsBack(t *testing.T) {
	m, h := newHeap(t, 4, PolicyEpoch)
	s := m.SetupThread()
	h.Atomic(s, func(tx *Tx) { tx.Store(0, 7) })
	ok := h.Atomic(s, func(tx *Tx) {
		tx.Store(0, 99)
		tx.Store(1, 99)
		tx.Abort()
	})
	if ok {
		t.Fatal("aborted transaction reported commit")
	}
	if got := s.Load8(h.Meta().Data); got != 7 {
		t.Fatalf("word 0 = %d after abort", got)
	}
	state, err := Recover(m.PersistentImage(), h.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if state.Words[0] != 7 || state.Words[1] != 0 {
		t.Fatalf("recovered after abort: %+v", state.Words[:2])
	}
}

func TestRepeatedWritesOneUndoRecord(t *testing.T) {
	m, h := newHeap(t, 4, PolicyEpoch)
	s := m.SetupThread()
	h.Atomic(s, func(tx *Tx) {
		for i := uint64(0); i < 20; i++ {
			tx.Store(0, i) // must not exhaust UndoCap=8
		}
	})
	state, err := Recover(m.PersistentImage(), h.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if state.Words[0] != 19 {
		t.Fatalf("word 0 = %d", state.Words[0])
	}
}

func TestUndoCapPanics(t *testing.T) {
	m, h := newHeap(t, 16, PolicyEpoch)
	s := m.SetupThread()
	defer func() {
		if recover() == nil {
			t.Error("exceeding UndoCap should panic")
		}
	}()
	h.Atomic(s, func(tx *Tx) {
		for i := 0; i < 16; i++ {
			tx.Store(i, 1)
		}
	})
}

func TestOutOfRangePanics(t *testing.T) {
	m, h := newHeap(t, 4, PolicyEpoch)
	s := m.SetupThread()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range word should panic")
		}
	}()
	h.Atomic(s, func(tx *Tx) { tx.Store(9, 1) })
}

func TestMultiThreadTxns(t *testing.T) {
	for _, pol := range Policies {
		t.Run(pol.String(), func(t *testing.T) {
			m := exec.NewMachine(exec.Config{Threads: 3, Seed: 4})
			s := m.SetupThread()
			h := MustNew(s, Config{Words: 6, UndoCap: 8, Policy: pol})
			m.Run(func(th *exec.Thread) {
				for i := 0; i < 10; i++ {
					h.Atomic(th, func(tx *Tx) {
						// Each thread keeps its pair equal.
						v := tx.Load(th.TID()*2) + 1
						tx.Store(th.TID()*2, v)
						tx.Store(th.TID()*2+1, v)
					})
				}
			})
			state, err := Recover(m.PersistentImage(), h.Meta())
			if err != nil {
				t.Fatal(err)
			}
			for g := 0; g < 3; g++ {
				if state.Words[2*g] != 10 || state.Words[2*g+1] != 10 {
					t.Fatalf("group %d: %v", g, state.Words[2*g:2*g+2])
				}
			}
		})
	}
}

func TestRecoverValidation(t *testing.T) {
	if _, err := Recover(memory.NewImage(), Meta{}); err == nil {
		t.Fatal("bad meta accepted")
	}
	m, h := newHeap(t, 4, PolicyEpoch)
	s := m.SetupThread()
	h.Atomic(s, func(tx *Tx) { tx.Store(0, 5) })
	im := m.PersistentImage()
	// Seal beyond armed id.
	im.WriteWord(h.Meta().Done, 99)
	if _, err := Recover(im, h.Meta()); !IsCorruption(err) {
		t.Fatalf("want corruption, got %v", err)
	}
}

func TestUnsealedTxnRollsBackAtRecovery(t *testing.T) {
	// Arm a transaction and write undo + in-place by hand, leaving the
	// seal stale: recovery must roll back.
	m, h := newHeap(t, 4, PolicyEpoch)
	s := m.SetupThread()
	h.Atomic(s, func(tx *Tx) { tx.Store(0, 5) }) // txn 1, sealed
	meta := h.Meta()
	im := m.PersistentImage()
	im.WriteWord(meta.TxnID, 2) // armed txn 2
	rec := meta.Undo
	im.WriteWord(rec, 0)                          // word 0
	im.WriteWord(rec+8, 5)                        // old value
	im.WriteWord(rec+16, recChecksum(2, 0, 0, 5)) // valid record
	im.WriteWord(meta.Data, 1234)                 // torn in-place write
	state, err := Recover(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if !state.RolledBack || state.Undone != 1 {
		t.Fatalf("rollback stats: %+v", state)
	}
	if state.Words[0] != 5 {
		t.Fatalf("word 0 = %d after rollback", state.Words[0])
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range Policies {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
	if Policy(9).String() != "policy(9)" {
		t.Fatal("unknown policy")
	}
}

func TestConfigValidation(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	if _, err := New(s, Config{Words: 0}); err == nil {
		t.Fatal("zero words accepted")
	}
	h, err := New(s, Config{Words: 2})
	if err != nil || h.cfg.UndoCap != 16 {
		t.Fatalf("default UndoCap: %v %v", h, err)
	}
	_ = fmt.Sprint(h.Meta())
}
