package pstm_test

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/pstm"
)

// ExampleHeap_Atomic transfers between two "accounts" durably: either
// both words change or neither, at every possible crash point.
func ExampleHeap_Atomic() {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	h := pstm.MustNew(s, pstm.Config{Words: 2, Policy: pstm.PolicyEpoch})

	// Seed balances.
	h.Atomic(s, func(tx *pstm.Tx) {
		tx.Store(0, 100)
		tx.Store(1, 0)
	})
	// Transfer 30 from account 0 to account 1.
	committed := h.Atomic(s, func(tx *pstm.Tx) {
		from := tx.Load(0)
		if from < 30 {
			tx.Abort()
			return
		}
		tx.Store(0, from-30)
		tx.Store(1, tx.Load(1)+30)
	})

	state, err := pstm.Recover(m.PersistentImage(), h.Meta())
	if err != nil {
		panic(err)
	}
	fmt.Printf("committed=%v balances=%v\n", committed, state.Words)
	// Output:
	// committed=true balances=[70 30]
}
