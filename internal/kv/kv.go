// Package kv implements a sharded persistent key-value store — the
// production serving scenario the ROADMAP targets — composed entirely
// from existing substrates: each shard is a journaled block table
// (internal/journal) on the persistent heap, so every Put inherits the
// journal's failure-atomic record→commit→apply discipline and, with
// Config.Integrity, its corruption-detecting durable format.
//
// Keys are dense integers in [0, Keys); key k lives in shard k % Shards
// at block k / Shards. A Put is a one-block journal transaction under
// the shard's lock; a Get is two lockless word loads (key tag and
// value) straight from the shard's table — the load-before-store
// dependences those reads import are exactly what distinguishes the
// persistency models on a read-mostly serving mix. Cross-shard
// operations share nothing, so shard count bounds both lock contention
// and the persist-order conflict surface.
package kv

import (
	"encoding/binary"
	"fmt"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/memory"
	"repro/internal/persistcheck"
)

// Config parameterizes a Store.
type Config struct {
	// Shards is the shard count (each shard is one journal.Store with
	// its own lock, table, and redo ring).
	Shards int
	// Keys is the dense key-space size; key k maps to shard k%Shards,
	// block k/Shards.
	Keys uint64
	// RingBytes is the per-shard redo ring capacity (multiple of 64);
	// 0 means 4 KiB.
	RingBytes uint64
	// Policy selects the journal's annotation discipline per shard.
	Policy journal.Policy
	// Integrity hardens the per-shard durable format (CRC-framed redo
	// records, dual-copy pointer words, shadow block checksums).
	Integrity bool
}

// Meta locates every shard's persistent structures for recovery.
type Meta struct {
	Shards []journal.Meta
	Keys   uint64
}

// Store is the sharded persistent KV store.
type Store struct {
	cfg    Config
	shards []*journal.Store
	meta   Meta
}

// New allocates and initializes a Store via a setup thread.
func New(s *exec.Thread, cfg Config) (*Store, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("kv: need at least one shard")
	}
	if cfg.Keys == 0 {
		return nil, fmt.Errorf("kv: empty key space")
	}
	if cfg.RingBytes == 0 {
		cfg.RingBytes = 1 << 12
	}
	st := &Store{cfg: cfg, meta: Meta{Keys: cfg.Keys}}
	for i := 0; i < cfg.Shards; i++ {
		blocks := 1 // shard may own no key, but journal.New requires a table
		if uint64(i) < cfg.Keys {
			blocks = int((cfg.Keys - uint64(i) + uint64(cfg.Shards) - 1) / uint64(cfg.Shards))
		}
		sh, err := journal.New(s, journal.Config{
			Blocks:       blocks,
			JournalBytes: cfg.RingBytes,
			Policy:       cfg.Policy,
			Integrity:    cfg.Integrity,
		})
		if err != nil {
			return nil, fmt.Errorf("kv: shard %d: %w", i, err)
		}
		st.shards = append(st.shards, sh)
		st.meta.Shards = append(st.meta.Shards, sh.Meta())
	}
	return st, nil
}

// MustNew is New that panics on config errors.
func MustNew(s *exec.Thread, cfg Config) *Store {
	st, err := New(s, cfg)
	if err != nil {
		panic(err)
	}
	return st
}

// Meta returns the persistent layout for recovery.
func (st *Store) Meta() Meta { return st.meta }

// tagPubCap bounds the per-key tag publications Checks declares: the
// publication walk is O(persists × publications), so an unbounded key
// space would swamp the witness checker. Fixture grids sit far below
// the cap; larger stores keep the journal-level annotations only.
const tagPubCap = 1024

// Checks merges every shard's recovery-critical annotations and, for
// key spaces within tagPubCap, adds the store-level contract: each
// block's key-tag word publishes the value and version words beside it
// — recovery (DecodeBlock) trusts a nonzero tag to mean both are
// valid. The in-place applies honor it transactionally (a tag persist
// and the payload persists it publishes commit together, so the tag is
// never re-persisted ahead of an unbound payload), and journal replay
// repairs any torn apply the model admits.
func (m Meta) Checks() persistcheck.Annotations {
	var out persistcheck.Annotations
	for _, sm := range m.Shards {
		out = out.Merge(sm.Checks())
	}
	if m.Keys > tagPubCap {
		return out
	}
	shards := uint64(len(m.Shards))
	for key := uint64(0); key < m.Keys; key++ {
		base := m.Shards[key%shards].Table + memory.Addr((key/shards)*journal.BlockBytes)
		out.Pubs = append(out.Pubs, persistcheck.Publication{
			Name: fmt.Sprintf("key%d-tag", key),
			Word: base,
			Data: []persistcheck.Extent{{Addr: base + 8, Size: 16}},
		})
	}
	return out
}

// SiteLabel maps persist addresses to per-shard annotation-site
// labels; table addresses resolve to the owning key's block
// ("shard1/key5") rather than the undifferentiated table.
func (m Meta) SiteLabel() func(memory.Addr) string {
	labels := make([]func(memory.Addr) string, len(m.Shards))
	for i, sm := range m.Shards {
		labels[i] = sm.SiteLabel()
	}
	return func(a memory.Addr) string {
		// The journal labeler says "other" for addresses outside its
		// structures, so only a specific label claims the address.
		for i, fn := range labels {
			l := fn(a)
			if l == "" || l == "other" {
				continue
			}
			if l == "table" {
				block := uint64(a-m.Shards[i].Table) / journal.BlockBytes
				key := block*uint64(len(m.Shards)) + uint64(i)
				if key < m.Keys {
					return fmt.Sprintf("shard%d/key%d", i, key)
				}
			}
			return fmt.Sprintf("shard%d/%s", i, l)
		}
		return "other"
	}
}

func (st *Store) locate(key uint64) (shard *journal.Store, block int) {
	if key >= st.cfg.Keys {
		panic(fmt.Sprintf("kv: key %d out of range [0,%d)", key, st.cfg.Keys))
	}
	return st.shards[key%uint64(st.cfg.Shards)], int(key / uint64(st.cfg.Shards))
}

// EncodeBlock builds the 64-byte table-block content for (key, val,
// ver): a nonzero key tag (key+1, so the zero block reads as absent),
// the value, and a writer version. Exported for recovery validation.
func EncodeBlock(key, val, ver uint64) []byte {
	b := make([]byte, journal.BlockBytes)
	binary.LittleEndian.PutUint64(b[0:8], key+1)
	binary.LittleEndian.PutUint64(b[8:16], val)
	binary.LittleEndian.PutUint64(b[16:24], ver)
	return b
}

// DecodeBlock parses a table block; ok is false for a never-written
// (all-zero tag) block.
func DecodeBlock(b []byte) (key, val, ver uint64, ok bool) {
	tag := binary.LittleEndian.Uint64(b[0:8])
	if tag == 0 {
		return 0, 0, 0, false
	}
	return tag - 1, binary.LittleEndian.Uint64(b[8:16]), binary.LittleEndian.Uint64(b[16:24]), true
}

// Put durably writes key := val as a one-block journal transaction
// under the owning shard's lock. ver tags the write (any per-writer
// monotonic value); the shard's policy decides the annotations.
func (st *Store) Put(t *exec.Thread, key, val, ver uint64) {
	sh, block := st.locate(key)
	sh.Update(t, []journal.Write{{Block: block, Data: EncodeBlock(key, val, ver)}})
}

// Get reads the current value of key without taking the shard lock:
// one load of the key tag and one of the value word. A concurrent Put
// may be applying in place, so a reader can observe a torn pair —
// exactly the volatile-visibility race a real serving store accepts on
// its fast path; recovery correctness never depends on Get.
func (st *Store) Get(t *exec.Thread, key uint64) (val uint64, ok bool) {
	sh, block := st.locate(key)
	base := sh.Meta().Table + memory.Addr(block*journal.BlockBytes)
	if t.Load8(base) == 0 {
		return 0, false
	}
	return t.Load8(base + 8), true
}

// State is the recovered store: per-key entries decoded from every
// shard's recovered table.
type State struct {
	// Entries maps key -> (val, ver) for every present key.
	Entries map[uint64][2]uint64
	// Records and Txns aggregate the per-shard journal replay counts.
	Records int
	Txns    int
}

// Lookup returns the recovered value of key.
func (s *State) Lookup(key uint64) (val uint64, ok bool) {
	e, ok := s.Entries[key]
	return e[0], ok
}

// decodeShard folds one recovered shard table into the state,
// validating that every present block's key tag maps back to exactly
// that (shard, block) slot.
func (s *State) decodeShard(m Meta, shard int, js *journal.State) error {
	shards := uint64(len(m.Shards))
	for i, b := range js.Table {
		key, val, ver, ok := DecodeBlock(b)
		if !ok {
			continue
		}
		if key >= m.Keys || key%shards != uint64(shard) || int(key/shards) != i {
			return fmt.Errorf("kv: shard %d block %d holds key %d (belongs at shard %d block %d)",
				shard, i, key, key%shards, key/shards)
		}
		s.Entries[key] = [2]uint64{val, ver}
	}
	s.Records += js.Records
	s.Txns += js.Txns
	return nil
}

// Recover rebuilds the store from a post-crash image: every shard's
// journal replays independently, then each table decodes under the
// key-placement invariant.
func Recover(im *memory.Image, m Meta) (*State, error) {
	st := &State{Entries: make(map[uint64][2]uint64)}
	for i, sm := range m.Shards {
		js, err := journal.Recover(im, sm)
		if err != nil {
			return nil, fmt.Errorf("kv: shard %d: %w", i, err)
		}
		if err := st.decodeShard(m, i, js); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// RecoverSalvage is Recover in detect-and-discard mode: per-shard
// salvage reports aggregate, and decode violations count as discarded
// shards rather than hard failures only when salvage already flagged
// the shard.
func RecoverSalvage(im *memory.Image, m Meta) (*State, fault.RecoveryReport, error) {
	var rep fault.RecoveryReport
	st := &State{Entries: make(map[uint64][2]uint64)}
	for i, sm := range m.Shards {
		js, srep, err := journal.RecoverSalvage(im, sm)
		rep.Merge(srep)
		if err != nil {
			return nil, rep, fmt.Errorf("kv: shard %d: %w", i, err)
		}
		if err := st.decodeShard(m, i, js); err != nil {
			return nil, rep, err
		}
	}
	return st, rep, nil
}
