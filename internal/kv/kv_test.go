package kv

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/journal"
	"repro/internal/memory"
)

func TestPutGetRecoverRoundTrip(t *testing.T) {
	// Keys deliberately not a multiple of shards, so shard tables have
	// uneven sizes.
	const keys, shards = 37, 5
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	st, err := New(s, Config{Shards: shards, Keys: keys, Policy: journal.PolicyEpoch})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64][2]uint64{}
	for i := 0; i < 100; i++ {
		key := uint64(i*7) % keys
		val, ver := uint64(1000+i), uint64(i+1)
		st.Put(s, key, val, ver)
		want[key] = [2]uint64{val, ver}
	}
	// Runtime reads see the latest values; unwritten keys read absent.
	for key, e := range want {
		if val, ok := st.Get(s, key); !ok || val != e[0] {
			t.Fatalf("Get(%d) = %d, %v; want %d", key, val, ok, e[0])
		}
	}
	for key := uint64(0); key < keys; key++ {
		if _, written := want[key]; !written {
			if _, ok := st.Get(s, key); ok {
				t.Fatalf("Get(%d) found a never-written key", key)
			}
		}
	}
	// Recovery from the full image reproduces exactly the written map.
	state, err := Recover(m.PersistentImage(), st.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Entries) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(state.Entries), len(want))
	}
	for key, e := range want {
		if got, ok := state.Entries[key]; !ok || got != e {
			t.Fatalf("recovered [%d] = %v, %v; want %v", key, got, ok, e)
		}
		if val, ok := state.Lookup(key); !ok || val != e[0] {
			t.Fatalf("Lookup(%d) = %d, %v", key, val, ok)
		}
	}
	if state.Txns != 100 || state.Records != 100 {
		t.Fatalf("replay stats: txns %d records %d", state.Txns, state.Records)
	}
}

func TestAllPoliciesMultiThread(t *testing.T) {
	for _, pol := range journal.Policies {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/%dT", pol, threads), func(t *testing.T) {
				const keys = 64
				m := exec.NewMachine(exec.Config{Threads: threads, Seed: 9})
				s := m.SetupThread()
				st := MustNew(s, Config{Shards: 4, Keys: keys, Policy: pol})
				m.Run(func(th *exec.Thread) {
					// Per-thread disjoint key slices: the final state is
					// schedule-independent.
					tid := uint64(th.TID())
					for i := uint64(0); i < 12; i++ {
						key := (tid + uint64(threads)*i) % keys
						st.Put(th, key, tid*100+i, i+1)
					}
				})
				state, err := Recover(m.PersistentImage(), st.Meta())
				if err != nil {
					t.Fatal(err)
				}
				for tid := uint64(0); tid < uint64(threads); tid++ {
					for i := uint64(0); i < 12; i++ {
						key := (tid + uint64(threads)*i) % keys
						if val, ok := state.Lookup(key); !ok || val != tid*100+i {
							t.Fatalf("tid %d op %d key %d: recovered %d, %v", tid, i, key, val, ok)
						}
					}
				}
				// Clean images salvage with nothing discarded.
				st2, rep, err := RecoverSalvage(m.PersistentImage(), st.Meta())
				if err != nil {
					t.Fatal(err)
				}
				if rep.Quarantined != 0 || rep.Dropped != 0 || rep.CRCDetected != 0 {
					t.Fatalf("clean salvage reported %+v", rep)
				}
				if len(st2.Entries) != len(state.Entries) {
					t.Fatalf("salvage recovered %d keys, strict %d", len(st2.Entries), len(state.Entries))
				}
			})
		}
	}
}

func TestShardingInvariants(t *testing.T) {
	// More shards than keys: trailing shards own zero keys and must
	// still construct and recover.
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	st := MustNew(s, Config{Shards: 8, Keys: 3, Policy: journal.PolicyStrict})
	for key := uint64(0); key < 3; key++ {
		st.Put(s, key, key+10, 1)
	}
	state, err := Recover(m.PersistentImage(), st.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Entries) != 3 {
		t.Fatalf("recovered %d keys", len(state.Entries))
	}

	// A block holding a key that belongs to a different slot must fail
	// placement validation. Key 1 lives at shard 1 block 0; plant key
	// 0's tag there (key 1 was never journaled in this image region
	// after we overwrite, so replay won't repair it).
	m2 := exec.NewMachine(exec.Config{})
	s2 := m2.SetupThread()
	st2 := MustNew(s2, Config{Shards: 2, Keys: 8, Policy: journal.PolicyEpoch})
	st2.Put(s2, 0, 42, 1)
	im := m2.PersistentImage()
	im.WriteWord(st2.Meta().Shards[1].Table, 0+1) // key-0 tag in shard 1
	if _, err := Recover(im, st2.Meta()); err == nil {
		t.Fatal("misplaced key accepted")
	}

	// Out-of-range keys panic at the access layer.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range key accepted")
			}
		}()
		st2.Put(s2, 8, 1, 1)
	}()
}

func TestBlockCodec(t *testing.T) {
	b := EncodeBlock(5, 77, 3)
	if len(b) != journal.BlockBytes {
		t.Fatalf("block size %d", len(b))
	}
	key, val, ver, ok := DecodeBlock(b)
	if !ok || key != 5 || val != 77 || ver != 3 {
		t.Fatalf("round trip: %d %d %d %v", key, val, ver, ok)
	}
	if _, _, _, ok := DecodeBlock(make([]byte, journal.BlockBytes)); ok {
		t.Fatal("zero block decoded as present")
	}
}

func TestConfigValidation(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	if _, err := New(s, Config{Shards: 0, Keys: 4}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := New(s, Config{Shards: 2, Keys: 0}); err == nil {
		t.Error("empty key space accepted")
	}
	if _, err := New(s, Config{Shards: 2, Keys: 4, RingBytes: 100}); err == nil {
		t.Error("unaligned ring accepted")
	}
}

func TestSiteLabelAndChecks(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	st := MustNew(s, Config{Shards: 3, Keys: 9, Policy: journal.PolicyEpoch})
	meta := st.Meta()
	label := meta.SiteLabel()
	for i, sm := range meta.Shards {
		// Table addresses resolve to the owning key: shard i block b
		// holds key b*shards+i.
		if got := label(sm.Table); got != fmt.Sprintf("shard%d/key%d", i, i) {
			t.Fatalf("shard %d table label %q", i, got)
		}
		if got := label(sm.Table + 64); got != fmt.Sprintf("shard%d/key%d", i, 3+i) {
			t.Fatalf("shard %d block 1 label %q", i, got)
		}
		if got := label(sm.Journal); got != fmt.Sprintf("shard%d/journal", i) {
			t.Fatalf("shard %d journal label %q", i, got)
		}
	}
	if got := label(memory.PersistentBase - 8); got != "other" {
		t.Fatalf("unowned address labeled %q", got)
	}
	checks := meta.Checks()
	// 2 journal pubs per shard + one tag pub per key.
	if want := 2*len(meta.Shards) + int(meta.Keys); len(checks.Pubs) != want {
		t.Fatalf("got %d publications, want %d", len(checks.Pubs), want)
	}
	tags := 0
	for _, p := range checks.Pubs {
		if !strings.HasSuffix(p.Name, "-tag") {
			continue
		}
		tags++
		if len(p.Data) != 1 || p.Data[0].Addr != p.Word+8 || p.Data[0].Size != 16 {
			t.Fatalf("tag pub %q publishes %+v, want the 16-byte val/ver pair beside the word", p.Name, p.Data)
		}
	}
	if tags != int(meta.Keys) {
		t.Fatalf("got %d tag publications, want %d", tags, meta.Keys)
	}
	// Every journal checkpoint region is scoped to its own shard.
	for _, reg := range checks.OrderAfter {
		if len(reg.Covers) == 0 {
			t.Fatalf("region %q has an unscoped contract in a composed store", reg.Name)
		}
	}
}

func TestChecksTagPubCap(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	st := MustNew(s, Config{Shards: 1, Keys: tagPubCap + 1, RingBytes: 1 << 12, Policy: journal.PolicyEpoch})
	checks := st.Meta().Checks()
	for _, p := range checks.Pubs {
		if strings.HasSuffix(p.Name, "-tag") {
			t.Fatalf("tag pub %q declared above tagPubCap", p.Name)
		}
	}
}
