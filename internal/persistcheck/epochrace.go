package persistcheck

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/trace"
)

// Epoch-race analysis. core.DetectEpochRaces replays the trace through
// the epoch-persistency state machine and reports conflicting accesses
// whose epochs leave persists unordered (§5.2). That detector works on
// dependence-level summaries; here each reported race is strengthened
// into a checker finding by extracting a concrete witness pair: two
// CONFLICTING persists — one from each racing epoch, touching the same
// tracking line — with no path between them in the model's constraint
// graph. The SC trace orders every pair (it is a total order), so a
// witness pair certifies an SC-divergent crash state: the down-closure
// of the later persist is a valid cut under the model that excludes the
// earlier one, leaving the line's words from two different SC moments.
//
// The conflict requirement is what separates a hazard from the
// concurrency relaxed persistency is FOR. Racing epochs leave plenty of
// persists mutually unordered by design — 2LC's slot-data persists from
// different threads are the textbook case — and those reorderings are
// invisible to recovery exactly when the persists touch unrelated
// state. Strong persist atomicity serializes same-word persists
// (Atomicity edges), so the recovery-observable divergence a race can
// produce lives in distinct words sharing a line: torn-looking records,
// half-updated neighbors, checksum-visible mixes of two SC moments.
// Races with no such witness are dropped rather than reported.
//
// The analysis applies to the epoch models only: strict persistency
// orders all persists with the SC order, and strand persistency orders
// persists only through explicit intra-strand annotations, so
// cross-strand interleavings are by design, not races.
func checkEpochRaces(tr *trace.Trace, g *graph.Graph, idx *graphIndex, p core.Params, cfg Config, r *Report) {
	switch p.Model {
	case core.Epoch, core.EpochTSO:
	default:
		r.skip("epoch-race detection: persist-epoch races are defined for the epoch models, not %s", p.Model)
		return
	}
	rr, err := core.DetectEpochRaces(tr, core.RaceConfig{
		TrackingGranularity: p.TrackingGranularity,
		Limit:               4 * cfg.limit(),
	})
	if err != nil {
		r.skip("epoch-race detection failed: %v", err)
		return
	}
	if rr.Total == 0 {
		return
	}

	// Persist nodes per (thread, epoch), with the same epoch indexing as
	// the detector (every annotation kind bumps).
	type epochKey struct {
		tid   int32
		epoch int
	}
	epochOf := make(map[int32]int)
	persists := make(map[epochKey][]graph.NodeID)
	for e := range tr.All() {
		if e.Kind.IsAnnotation() {
			epochOf[e.TID]++
			continue
		}
		if e.IsPersist() {
			k := epochKey{e.TID, epochOf[e.TID]}
			persists[k] = append(persists[k], idx.nodeOf[e.Seq])
		}
	}

	// Conflicts are judged at cache-line granularity (or the model's
	// tracking granularity when coarser): the line is the unit whose
	// words recovery-side invariants — record checksums, block tags,
	// value pairs — read together.
	line := p.TrackingGranularity
	if line < lineBytes {
		line = lineBytes
	}

	type racePair struct {
		a, b epochKey
	}
	seen := make(map[racePair]bool)
	for _, race := range rr.Races {
		pair := racePair{
			a: epochKey{race.FirstTID, race.FirstEpoch},
			b: epochKey{race.SecondTID, race.SecondEpoch},
		}
		if seen[pair] {
			continue
		}
		seen[pair] = true
		// Find an unordered CONFLICTING persist pair across the two
		// epochs: same tracking line, no graph path. Node ids are in
		// trace order, so min/max gives the SC orientation. Same-word
		// pairs are pre-ordered by atomicity edges, so surviving
		// witnesses are false-sharing neighbors. Only path queries count
		// toward the probe cap; the line filter is cheap.
		wa, wb := graph.NodeID(-1), graph.NodeID(-1)
		probes := 0
	search:
		for _, a := range persists[pair.a] {
			for _, b := range persists[pair.b] {
				if !sameLine(g.Nodes[a].Event, g.Nodes[b].Event, line) {
					continue
				}
				if probes++; probes > 128 {
					break search
				}
				lo, hi := a, b
				if lo > hi {
					lo, hi = hi, lo
				}
				if !idx.hasPath(lo, hi) {
					wa, wb = lo, hi
					break search
				}
			}
		}
		if wa < 0 {
			continue
		}
		ae, be := g.Nodes[wa].Event, g.Nodes[wb].Event
		cut := divergentCut(g, idx, wb)
		r.add(Finding{
			Kind:     EpochRace,
			Severity: Hazard,
			Msg: fmt.Sprintf("persist-epoch race on %#x (t%d/e%d vs t%d/e%d): persists %s and %s are unordered under %s",
				uint64(race.Addr), race.FirstTID, race.FirstEpoch, race.SecondTID, race.SecondEpoch,
				fmtPersist(ae), fmtPersist(be), p.Model),
			Site:     cfg.site(be.Addr),
			TID:      be.TID,
			Seq:      be.Seq,
			WitnessA: wa,
			WitnessB: wb,
			Cut:      cut,
			Repro:    cfg.repro(cut),
		}, cfg.limit())
	}
	if rr.Total > len(rr.Races) {
		r.skip("epoch-race detection: %d additional racing conflict pairs beyond the example cap were not examined", rr.Total-len(rr.Races))
	}
}

// lineBytes is the persist-atomicity line used to judge whether two
// racing persists conflict.
const lineBytes = 64

// sameLine reports whether two persists touch a common tracking line.
func sameLine(a, b trace.Event, line uint64) bool {
	af, al := memory.BlockSpan(a.Addr, int(a.Size), line)
	bf, bl := memory.BlockSpan(b.Addr, int(b.Size), line)
	return af <= bl && bf <= al
}
