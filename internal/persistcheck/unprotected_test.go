package persistcheck

import (
	"testing"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/trace"
)

// unprotCheck runs Check over a one-persist trace with the given
// protected extents and returns the UnprotectedMetadata finding count
// for the publication word at PersistentBase.
func unprotCheck(t *testing.T, prot []Extent) int {
	t.Helper()
	tr := &trace.Trace{}
	tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: memory.PersistentBase, Size: 8, Val: 1})
	ann := Annotations{
		Pubs:      []Publication{{Name: "w", Word: memory.PersistentBase}},
		Protected: prot,
	}
	r, err := Check(tr, core.Params{Model: core.Epoch}, ann, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return r.Counts[UnprotectedMetadata]
}

// TestUnprotectedCoverage exercises the interval-set coverage query:
// single-extent coverage and non-coverage behave as before, and a word
// jointly covered by two abutting protected extents now counts as
// protected (the old single-extent scan flagged it).
func TestUnprotectedCoverage(t *testing.T) {
	base := memory.PersistentBase
	if n := unprotCheck(t, nil); n != 1 {
		t.Fatalf("no protection: %d findings, want 1", n)
	}
	if n := unprotCheck(t, []Extent{{Addr: base, Size: 8}}); n != 0 {
		t.Fatalf("exact extent: %d findings, want 0", n)
	}
	if n := unprotCheck(t, []Extent{{Addr: base - 8, Size: 64}}); n != 0 {
		t.Fatalf("containing extent: %d findings, want 0", n)
	}
	// Two abutting extents jointly covering the word: protected.
	if n := unprotCheck(t, []Extent{{Addr: base, Size: 4}, {Addr: base + 4, Size: 4}}); n != 0 {
		t.Fatalf("abutting extents: %d findings, want 0", n)
	}
	// A one-byte hole in the middle: not protected.
	if n := unprotCheck(t, []Extent{{Addr: base, Size: 4}, {Addr: base + 5, Size: 3}}); n != 1 {
		t.Fatalf("extents with hole: %d findings, want 1", n)
	}
	// Partial overlap from both sides with a gap at the end.
	if n := unprotCheck(t, []Extent{{Addr: base - 4, Size: 8}, {Addr: base + 4, Size: 2}}); n != 1 {
		t.Fatalf("short extents: %d findings, want 1", n)
	}
}
