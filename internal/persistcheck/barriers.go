package persistcheck

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/trace"
)

// Redundant-barrier analysis. graph.BuildWithBarriers reports, for each
// annotation, whether it changed the builder's dependence state; an
// annotation that binds nothing induces no constraint edge, so removing
// it leaves the graph identical — the barrier is pure execution cost
// (§4.1's motivation: persist barriers are the stalls the relaxed
// models exist to avoid). Findings are Perf severity, not hazards:
// redundancy is model-relative (every barrier is trivially redundant
// under a model that ignores the annotation kind, as when running a
// strand-annotated workload under epoch persistency), and removing a
// barrier that is redundant under one model can of course break another.
//
// PersistSync annotations are never reported: under buffered strict
// persistency a sync has execution-timing semantics (it stalls until
// prior persists drain) that the constraint graph does not model, so
// "no new edge" does not mean "no effect".
//
// Attribution follows the telemetry convention: each finding carries
// the site label of the thread's next persist after the annotation,
// which names the annotation point in the structure's algorithm.
func checkBarriers(tr *trace.Trace, p core.Params, barriers []graph.BarrierInfo, cfg Config, r *Report) {
	if p.Model == core.Strict {
		r.skip("redundant-barrier lint: annotations are free no-ops under strict persistency")
		return
	}
	findings := make([]Finding, 0, 8)
	pendingByTID := make(map[int32][]int) // finding indexes awaiting a site
	bi := 0
	for e := range tr.All() {
		if e.IsPersist() {
			if pend := pendingByTID[e.TID]; len(pend) > 0 {
				site := cfg.site(e.Addr)
				for _, fi := range pend {
					findings[fi].Site = site
				}
				pendingByTID[e.TID] = pend[:0]
			}
			continue
		}
		if !e.Kind.IsAnnotation() {
			continue
		}
		info := barriers[bi]
		bi++
		if !info.Redundant || info.Kind == trace.PersistSync {
			continue
		}
		what := "binds no new persist-order dependence"
		if info.Kind == trace.NewStrand {
			what = "clears no dependence state"
		}
		findings = append(findings, Finding{
			Kind:     RedundantBarrier,
			Severity: Perf,
			Msg: fmt.Sprintf("%s at #%d (t%d, epoch %d) %s under %s",
				info.Kind, info.Seq, info.TID, info.Epoch, what, p.Model),
			TID:      info.TID,
			Seq:      info.Seq,
			WitnessA: -1,
			WitnessB: -1,
		})
		if cfg.SiteLabel != nil {
			pendingByTID[e.TID] = append(pendingByTID[e.TID], len(findings)-1)
		}
	}
	for i := range findings {
		r.add(findings[i], cfg.limit())
	}
}
