package persistcheck

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/trace"
)

// Escape check (strand persistency only). An order-critical persistent
// word (annotated as an OrderAfter region: the queue tail, the journal
// checkpoint, the PSTM seal) carries §5.3's contract: "a persist strand
// begins by reading persisted memory locations after which new persists
// must be ordered", followed by a persist barrier. A thread that loads
// such a word and then acts on the value — reusing freed slots,
// overwriting retired records — imports the observed persist as a
// dependence; the recipe's barrier binds it. NewStrand discards the
// thread's dependence state, so a persist issued after NewStrand
// without re-running the read-then-barrier recipe escapes the contract:
// the model graph has no path from the observed region persist to the
// new persist, and a crash can expose the new persist alongside a stale
// region value (a stale checkpoint next to newer ring contents, a stale
// tail next to overwritten slots).
//
// The check runs only under strand persistency: under epoch models
// nothing discards imported dependences (they bind at the next barrier
// at the latest), and under strict persistency every load binds
// immediately.
type obligation struct {
	// src is the region persist the thread observed, -1 when none.
	src graph.NodeID
	// loadSeq is the observing load.
	loadSeq uint64
	// settled: a prior persist confirmed the path, and no NewStrand has
	// invalidated it since; skip further path queries.
	settled bool
	// reported: this obligation already produced a finding; stop.
	reported bool
}

func checkEscapes(tr *trace.Trace, g *graph.Graph, idx *graphIndex, p core.Params, ann Annotations, cfg Config, r *Report) {
	if len(ann.OrderAfter) == 0 {
		return
	}
	if p.Model != core.Strand {
		r.skip("escape check: §5.3's read-then-barrier contract is a strand-persistency discipline; not applicable under %s", p.Model)
		return
	}
	lastWriter := make([]graph.NodeID, len(ann.OrderAfter))
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	obl := make(map[int32][]obligation)
	get := func(tid int32) []obligation {
		o := obl[tid]
		if o == nil {
			o = make([]obligation, len(ann.OrderAfter))
			for i := range o {
				o[i].src = -1
			}
			obl[tid] = o
		}
		return o
	}
	overlaps := func(reg Region, e trace.Event) bool {
		return e.Addr < reg.Addr+memory.Addr(reg.Size) && e.Addr+memory.Addr(e.Size) > reg.Addr
	}
	for e := range tr.All() {
		switch {
		case e.Kind == trace.NewStrand:
			// The strand discards the thread's dependence state; any
			// satisfied obligation must be re-proven (the §5.3 recipe
			// re-reads the region and re-binds).
			for i := range get(e.TID) {
				get(e.TID)[i].settled = false
			}
		case e.IsPersist():
			node := idx.nodeOf[e.Seq]
			o := get(e.TID)
			for i := range o {
				if o[i].src < 0 || o[i].settled || o[i].reported {
					continue
				}
				if !regionCovers(ann.OrderAfter[i], e) {
					continue
				}
				if idx.hasPath(o[i].src, node) {
					o[i].settled = true
					continue
				}
				se := g.Nodes[o[i].src].Event
				cut := divergentCut(g, idx, node)
				r.add(Finding{
					Kind:     UnboundRead,
					Severity: Hazard,
					Msg: fmt.Sprintf("persist %s is not ordered after %q persist %s observed by t%d's load at #%d",
						fmtPersist(e), ann.OrderAfter[i].Name, fmtPersist(se), e.TID, o[i].loadSeq),
					Site:     cfg.site(e.Addr),
					TID:      e.TID,
					Seq:      e.Seq,
					WitnessA: o[i].src,
					WitnessB: node,
					Cut:      cut,
					Repro:    cfg.repro(cut),
				}, cfg.limit())
				o[i].reported = true
			}
			// Track the regions' latest persist (after the obligation
			// checks: a persist does not obligate its own thread).
			for i, reg := range ann.OrderAfter {
				if overlaps(reg, e) {
					lastWriter[i] = node
				}
			}
		case e.Kind.HasLoadSemantics():
			o := get(e.TID)
			for i, reg := range ann.OrderAfter {
				if !overlaps(reg, e) {
					continue
				}
				if w := lastWriter[i]; w >= 0 && (o[i].src != w || o[i].reported) {
					o[i] = obligation{src: w, loadSeq: e.Seq}
				}
			}
		}
	}
}

// regionCovers reports whether the persist falls under the region's
// contract: inside one of Covers, or anywhere when Covers is empty.
func regionCovers(reg Region, e trace.Event) bool {
	if len(reg.Covers) == 0 {
		return true
	}
	for _, x := range reg.Covers {
		if x.Contains(e.Addr, e.Size) {
			return true
		}
	}
	return false
}
