package persistcheck

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/trace"
)

// Unpersisted-publication lint. A publication persist (queue head,
// journal committed-head, PSTM seal) makes data reachable to recovery;
// if the model graph has no path from a published data persist to the
// publication persist, a crash can expose the publication without the
// payload — the classic missing data→head barrier of Algorithm 1
// line 8.
//
// Scope rules keep the lint exact on the in-tree structures:
//
//   - ValueCovers publications (queue head, journal commit) publish by
//     value: a persisted offset v covers every data persist to
//     Data[0]+idx with idx+size ≤ v, across all threads — which is how
//     a Two-Lock Concurrent head persist publishes other threads'
//     entries. The mapping from address back to monotonic offset is
//     only unique before the ring wraps (v ≤ extent size); at the first
//     wrapping publication the lint retires the word and notes it.
//   - plain publications (PSTM seal) publish the issuing thread's own
//     data persists since its previous publication persist to the same
//     word — the lock-serialized transaction pattern.
//   - AllThreads publications (PSTM arm, journal checkpoint) publish
//     every thread's pending data persists: the word's value summarizes
//     global state, so overwriting it must be ordered after everything
//     it supersedes. Covered persists leave the pool — coverage is
//     sticky through the word's persist-atomicity chain.
type pubState struct {
	pub Publication
	// dead is set once a ValueCovers word wraps.
	dead bool
	// pending data persists: all threads for ValueCovers (with extent
	// offsets), shared for AllThreads, per issuing thread otherwise.
	valPending []valEntry
	shared     []graph.NodeID
	byThread   map[int32][]graph.NodeID
}

type valEntry struct {
	node graph.NodeID
	end  uint64 // extent offset one past the persist's last byte
}

func checkPublications(tr *trace.Trace, g *graph.Graph, idx *graphIndex, ann Annotations, cfg Config, r *Report) {
	if len(ann.Pubs) == 0 {
		return
	}
	pubs := make([]*pubState, len(ann.Pubs))
	for i, pub := range ann.Pubs {
		pubs[i] = &pubState{pub: pub, byThread: make(map[int32][]graph.NodeID)}
	}
	for e := range tr.All() {
		if !e.IsPersist() {
			continue
		}
		node := idx.nodeOf[e.Seq]
		for _, ps := range pubs {
			pub := ps.pub
			if e.Addr >= pub.Word && e.Addr < pub.Word+wordBytes {
				ps.publish(e, node, g, idx, cfg, r)
				continue
			}
			if ps.dead {
				continue
			}
			for xi, x := range pub.Data {
				if !x.Contains(e.Addr, e.Size) {
					continue
				}
				switch {
				case pub.ValueCovers:
					if xi == 0 {
						off := uint64(e.Addr - x.Addr)
						ps.valPending = append(ps.valPending, valEntry{node: node, end: off + uint64(e.Size)})
					}
				case pub.AllThreads:
					ps.shared = append(ps.shared, node)
				default:
					ps.byThread[e.TID] = append(ps.byThread[e.TID], node)
				}
				break
			}
		}
	}
}

const wordBytes = 8

// publish handles one persist of the publication word: every data
// persist it covers must be an ancestor in the model graph.
func (ps *pubState) publish(e trace.Event, node graph.NodeID, g *graph.Graph, idx *graphIndex, cfg Config, r *Report) {
	pub := ps.pub
	if e.Val == 0 {
		// A zero persist retracts rather than publishes: it is the
		// initialization/unsealed state (queue head 0, journal
		// committed-head 0, PSTM done 0), making nothing reachable to
		// recovery. It also closes the retracted generation's
		// plain-publication scope — data persisted before the retraction
		// (setup-time initialization) belongs to it, not to the next real
		// publication. (A ValueCovers zero would cover nothing anyway,
		// and offsets are monotonic, so valPending stays.)
		ps.byThread[e.TID] = nil
		ps.shared = nil
		return
	}
	if !pub.ValueCovers {
		pend := ps.byThread[e.TID]
		if pub.AllThreads {
			pend = ps.shared
		}
		if len(pend) == 0 {
			return
		}
		gen := idx.markAncestors(node)
		for _, d := range pend {
			if !idx.inMarked(d, gen) {
				ps.report(g, idx, cfg, r, d, node, e)
			}
		}
		if pub.AllThreads {
			ps.shared = pend[:0]
		} else {
			ps.byThread[e.TID] = pend[:0]
		}
		return
	}
	if ps.dead {
		return
	}
	v := e.Val
	if v > pub.Data[0].Size {
		ps.dead = true
		ps.valPending = nil
		r.skip("publication %q wrapped (value %d > %d bytes); coverage lint retired from #%d",
			pub.Name, v, pub.Data[0].Size, e.Seq)
		return
	}
	if len(ps.valPending) == 0 {
		return
	}
	gen := idx.markAncestors(node)
	kept := ps.valPending[:0]
	for _, ve := range ps.valPending {
		if ve.end > v {
			kept = append(kept, ve)
			continue
		}
		if !idx.inMarked(ve.node, gen) {
			ps.report(g, idx, cfg, r, ve.node, node, e)
		}
	}
	ps.valPending = kept
}

func (ps *pubState) report(g *graph.Graph, idx *graphIndex, cfg Config, r *Report, d, p graph.NodeID, e trace.Event) {
	de := g.Nodes[d].Event
	cut := divergentCut(g, idx, p)
	r.add(Finding{
		Kind:     UnpersistedPublication,
		Severity: Hazard,
		Msg: fmt.Sprintf("%q persist %s publishes data persist %s without an ordering path",
			ps.pub.Name, fmtPersist(e), fmtPersist(de)),
		Site:     cfg.site(de.Addr),
		TID:      e.TID,
		Seq:      e.Seq,
		WitnessA: d,
		WitnessB: p,
		Cut:      cut,
		Repro:    cfg.repro(cut),
	}, cfg.limit())
}
