package persistcheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
)

// Kind enumerates the checker's analyses.
type Kind uint8

const (
	// EpochRace: conflicting persist epochs left mutually unordered
	// under the model although SC orders them (§5.2).
	EpochRace Kind = iota
	// UnpersistedPublication: a publication persist not ordered after
	// the data it publishes.
	UnpersistedPublication
	// RedundantBarrier: an annotation inducing no new constraint edge.
	RedundantBarrier
	// UnboundRead: an order-critical persistent load whose dependence is
	// not bound (or was discarded) before the thread's next persist.
	UnboundRead
	// UnprotectedMetadata: declared recovery metadata (a publication
	// word or order-after region) not covered by any Protected extent —
	// no CRC frame, shadow checksum, or durable word guards it, so one
	// silent bit flip there re-frames the structure with a clean
	// recovery report.
	UnprotectedMetadata
)

// String returns the analysis name used in reports and metrics.
func (k Kind) String() string {
	switch k {
	case EpochRace:
		return "epoch-race"
	case UnpersistedPublication:
		return "unpersisted-publication"
	case RedundantBarrier:
		return "redundant-barrier"
	case UnboundRead:
		return "unbound-read"
	case UnprotectedMetadata:
		return "unprotected-metadata"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Severity classifies findings.
type Severity uint8

const (
	// Hazard findings describe recovery-visible misbehavior: a crash
	// state the model admits that breaks a recovery invariant or
	// diverges from every SC-consistent state.
	Hazard Severity = iota
	// Perf findings describe pure execution cost with no correctness
	// impact (redundant barriers).
	Perf
	// Robustness findings describe exposure to *media* faults rather
	// than ordering bugs: the persistency annotations are sound, but a
	// silent bit error in the flagged metadata would go undetected.
	// Separate from Hazard so the ordering-correctness gates stay
	// meaningful on the plain (non-integrity) formats; opt into failing
	// on these with `persistcheck -require-integrity`.
	Robustness
)

// String returns the severity name.
func (s Severity) String() string {
	switch s {
	case Perf:
		return "perf"
	case Robustness:
		return "robustness"
	default:
		return "hazard"
	}
}

// Finding is one checker result.
type Finding struct {
	Kind     Kind
	Severity Severity
	// Msg is the one-line human description.
	Msg string
	// Site is the telemetry attribution site, when a SiteLabel is
	// configured.
	Site string
	// TID is the thread the finding is attributed to.
	TID int32
	// Seq is the trace position the finding anchors to (the later
	// persist of a witness pair, or the annotation event).
	Seq uint64
	// WitnessA and WitnessB hold a hazard's witness persist pair as
	// graph node ids: A precedes B in SC order, but the model graph has
	// no path A→B. Both are -1 for findings without a pair (Perf).
	WitnessA, WitnessB graph.NodeID
	// Cut is the divergent crash state exhibiting B without A (empty
	// for Perf findings).
	Cut graph.Cut
	// Repro is the fault-campaign replay line for Cut ("" unless
	// Config.ReproParams was set).
	Repro string
}

// String renders the finding as one report line.
func (f Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s: %s", f.Severity, f.Kind, f.Msg)
	if f.Site != "" {
		fmt.Fprintf(&b, " [site %s]", f.Site)
	}
	if f.Repro != "" {
		fmt.Fprintf(&b, "\n  repro: %s", f.Repro)
	}
	return b.String()
}

// Report aggregates one Check run.
type Report struct {
	Model    core.Model
	Events   int
	Persists int
	// Findings holds up to Config.Limit findings per kind, in analysis
	// order.
	Findings []Finding
	// Counts holds the total number of findings per kind, including
	// those dropped by the limit.
	Counts map[Kind]int
	// Skipped lists analyses not applicable under the model (e.g. the
	// epoch-race detector under strict persistency), with reasons.
	Skipped []string

	stored map[Kind]int
}

func (r *Report) add(f Finding, limit int) {
	r.Counts[f.Kind]++
	if r.stored == nil {
		r.stored = make(map[Kind]int)
	}
	if r.stored[f.Kind] >= limit {
		return
	}
	r.stored[f.Kind]++
	r.Findings = append(r.Findings, f)
}

func (r *Report) skip(format string, args ...any) {
	r.Skipped = append(r.Skipped, fmt.Sprintf(format, args...))
}

// SortFindings reorders stored findings into a canonical order — by
// attribution site, then divergent-cut key, then kind, then trace
// position — instead of analysis discovery order. CLIs sort before
// printing so multi-model output stays byte-identical across sweep
// worker counts; package callers keep analysis order unless they ask.
func (r *Report) SortFindings() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if c := compareCuts(a.Cut, b.Cut); c != 0 {
			return c < 0
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Seq < b.Seq
	})
}

// compareCuts orders cuts by size, then lexicographically on the
// inclusion vector (excluded before included).
func compareCuts(a, b graph.Cut) int {
	if len(a.Included) != len(b.Included) {
		return len(a.Included) - len(b.Included)
	}
	for i := range a.Included {
		if a.Included[i] != b.Included[i] {
			if b.Included[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Hazards returns the number of hazard-severity findings (total, not
// capped by the storage limit).
func (r *Report) Hazards() int {
	n := 0
	for k, c := range r.Counts {
		if kindSeverity(k) == Hazard {
			n += c
		}
	}
	return n
}

// PerfFindings returns the number of perf-severity findings.
func (r *Report) PerfFindings() int {
	n := 0
	for k, c := range r.Counts {
		if kindSeverity(k) == Perf {
			n += c
		}
	}
	return n
}

// RobustnessFindings returns the number of robustness-severity
// findings (unprotected recovery metadata).
func (r *Report) RobustnessFindings() int {
	n := 0
	for k, c := range r.Counts {
		if kindSeverity(k) == Robustness {
			n += c
		}
	}
	return n
}

func kindSeverity(k Kind) Severity {
	switch k {
	case RedundantBarrier:
		return Perf
	case UnprotectedMetadata:
		return Robustness
	default:
		return Hazard
	}
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "persistcheck: model=%s events=%d persists=%d hazards=%d perf=%d robustness=%d\n",
		r.Model, r.Events, r.Persists, r.Hazards(), r.PerfFindings(), r.RobustnessFindings())
	for _, s := range r.Skipped {
		fmt.Fprintf(&b, "  (skipped: %s)\n", s)
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %s\n", strings.ReplaceAll(f.String(), "\n", "\n  "))
	}
	for _, k := range []Kind{EpochRace, UnpersistedPublication, RedundantBarrier, UnboundRead, UnprotectedMetadata} {
		if dropped := r.Counts[k] - r.stored[k]; dropped > 0 {
			fmt.Fprintf(&b, "  ... %d more %s finding(s) not shown\n", dropped, k)
		}
	}
	return b.String()
}
