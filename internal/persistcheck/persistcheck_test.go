// Cross-validation tests: the static checker's verdicts on the shipped
// workloads, checked against the recovery observer in both directions.
// Correctly annotated structures must report zero hazards under their
// target models; every seeded bug fixture must be flagged; and the
// racing-epochs verdicts must match what crash sampling finds (safe for
// the queue, unsafe for the journal and PSTM — the paper's point that
// relaxed annotation correctness is per-algorithm).
package persistcheck_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/observer"
	"repro/internal/persistcheck"
	"repro/internal/workload"
)

// opt builds workload options from flag spellings with the policy's
// natural model, mirroring the cmd/persistcheck defaults.
func opt(t *testing.T, wl, design, policy string, threads, inserts int, seed int64) workload.Options {
	t.Helper()
	d, err := workload.ParseDesign(design)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.ParsePolicy(policy)
	if err != nil {
		t.Fatal(err)
	}
	return workload.Options{
		Workload: wl, Design: d, Policy: p,
		Model:   workload.ModelForPolicy(wl, p),
		Threads: threads, Inserts: inserts, Payload: 64, Seed: seed,
		DesignStr: design, PolicyStr: policy,
	}
}

func check(t *testing.T, o workload.Options) (*workload.Run, *persistcheck.Report) {
	t.Helper()
	run, err := workload.Build(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := persistcheck.Check(run.Trace, core.Params{Model: o.Model}, run.Checks, persistcheck.Config{
		ReproParams: o.Params(),
		SiteLabel:   run.SiteLabel,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run, rep
}

func TestCorrectWorkloadsReportNoHazards(t *testing.T) {
	// Every shipped structure under every (policy, target model) pair it
	// supports must come back clean — the checker's false-positive
	// contract, matching the observer's all-recovered verdicts.
	for _, wl := range []string{"queue", "journal", "pstm"} {
		designs := []string{"cwl"}
		if wl == "queue" {
			designs = []string{"cwl", "2lc"}
		}
		for _, design := range designs {
			for _, policy := range []string{"strict", "epoch", "strand"} {
				name := fmt.Sprintf("%s/%s/%s", wl, design, policy)
				t.Run(name, func(t *testing.T) {
					_, rep := check(t, opt(t, wl, design, policy, 2, 16, 1))
					if rep.Hazards() != 0 {
						t.Fatalf("correct %s flagged:\n%s", name, rep)
					}
				})
			}
		}
	}
}

func TestCWLEpochCleanUnderEpochTSO(t *testing.T) {
	// CWL's epoch annotations publish only same-thread data, so TSO
	// program order alone carries the data→head ordering: clean under
	// epoch-TSO too (the observer agrees; contrast 2LC, whose head
	// publication is cross-thread and genuinely unsafe without
	// volatile-conflict propagation).
	o := opt(t, "queue", "cwl", "epoch", 2, 16, 1)
	o.Model = core.EpochTSO
	_, rep := check(t, o)
	if rep.Hazards() != 0 {
		t.Fatalf("cwl/epoch under epoch-tso flagged:\n%s", rep)
	}
}

func TestTwoLockEpochHazardousUnderEpochTSO(t *testing.T) {
	// Epoch-TSO drops volatile-conflict propagation, so the cross-thread
	// ordering 2LC's lock handoff relies on vanishes. The checker must
	// flag it, and the observer confirms the hazard is real (reachable
	// corrupt crash states), so this is a true positive, not noise.
	o := opt(t, "queue", "2lc", "epoch", 2, 16, 1)
	o.Model = core.EpochTSO
	run, rep := check(t, o)
	if rep.Hazards() == 0 {
		t.Fatalf("2lc/epoch under epoch-tso not flagged:\n%s", rep)
	}
	corr, err := observer.FindCorruption(run.Trace, core.Params{Model: core.EpochTSO}, run.Recover,
		observer.Config{Samples: 600, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if corr == nil {
		t.Fatal("observer found no corruption for 2lc/epoch under epoch-tso")
	}
}

func TestCheckerFlagsSeededBugs(t *testing.T) {
	// Each seeded bug fixture removes one load-bearing annotation; the
	// checker must flag all of them with the expected analysis kind.
	cases := []struct {
		name string
		base func(t *testing.T) workload.Options
		mut  func(*workload.Options)
		kind persistcheck.Kind
	}{
		{"queue-cwl-epoch/break-barrier",
			func(t *testing.T) workload.Options { return opt(t, "queue", "cwl", "epoch", 2, 16, 1) },
			func(o *workload.Options) { o.BreakBar = true },
			persistcheck.UnpersistedPublication},
		{"queue-2lc-epoch/break-barrier",
			func(t *testing.T) workload.Options { return opt(t, "queue", "2lc", "epoch", 2, 16, 1) },
			func(o *workload.Options) { o.BreakBar = true },
			persistcheck.UnpersistedPublication},
		{"journal-epoch/break-commit",
			func(t *testing.T) workload.Options { return opt(t, "journal", "cwl", "epoch", 2, 16, 1) },
			func(o *workload.Options) { o.BreakCommit = true },
			persistcheck.UnpersistedPublication},
		{"journal-strand/omit-strand-recipe",
			func(t *testing.T) workload.Options { return opt(t, "journal", "cwl", "strand", 2, 16, 1) },
			func(o *workload.Options) { o.OmitRecipe = true },
			persistcheck.UnboundRead},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := c.base(t)
			c.mut(&o)
			_, rep := check(t, o)
			if rep.Hazards() == 0 {
				t.Fatalf("seeded bug not flagged:\n%s", rep)
			}
			if rep.Counts[c.kind] == 0 {
				t.Fatalf("expected %s findings, got:\n%s", c.kind, rep)
			}
			for _, f := range rep.Findings {
				if f.Severity == persistcheck.Hazard && f.Repro == "" {
					t.Fatalf("hazard finding without repro: %s", f)
				}
			}
		})
	}
}

func TestCompletionBarrierFixtureAcrossSeeds(t *testing.T) {
	// 2LC's completion barrier only matters when a non-oldest insert
	// completes first, so whether the omit-completion-barrier fixture's
	// hazard appears in a trace depends on the schedule. Scanning seeds
	// must find it (same protocol as the observer's load-bearing test),
	// while the correct implementation stays clean on every seed.
	flagged := 0
	for seed := int64(0); seed < 6; seed++ {
		o := opt(t, "queue", "2lc", "epoch", 3, 12, seed)
		o.OmitComp = true
		_, rep := check(t, o)
		if rep.Hazards() > 0 {
			flagged++
		}
		good := opt(t, "queue", "2lc", "epoch", 3, 12, seed)
		if _, rep := check(t, good); rep.Hazards() != 0 {
			t.Fatalf("correct 2lc flagged at seed %d:\n%s", seed, rep)
		}
	}
	if flagged == 0 {
		t.Fatal("omit-completion-barrier fixture never flagged across seeds 0..5")
	}
}

func TestRacingVerdictsMatchObserver(t *testing.T) {
	// Racing epochs (no barriers around the lock) are safe for the queue
	// but unsafe for the journal and PSTM. The checker's verdict must
	// match crash sampling on the same trace, in both directions.
	cases := []struct {
		name   string
		wl     string
		design string
		unsafe bool
	}{
		{"queue-cwl", "queue", "cwl", false},
		{"queue-2lc", "queue", "2lc", false},
		{"journal", "journal", "cwl", true},
		{"pstm", "pstm", "cwl", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := opt(t, c.wl, c.design, "racing", 2, 16, 1)
			run, rep := check(t, o)
			corr, err := observer.FindCorruption(run.Trace, core.Params{Model: o.Model}, run.Recover,
				observer.Config{Samples: 600, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if c.unsafe {
				if rep.Hazards() == 0 {
					t.Fatalf("racing %s not flagged:\n%s", c.name, rep)
				}
				if corr == nil {
					t.Fatalf("observer found no corruption for racing %s", c.name)
				}
			} else {
				if rep.Hazards() != 0 {
					t.Fatalf("racing %s flagged but observer-safe:\n%s", c.name, rep)
				}
				if corr != nil {
					t.Fatalf("observer found corruption for racing %s: %v", c.name, corr)
				}
			}
		})
	}
}

func TestHazardCutsAreSCDivergent(t *testing.T) {
	// Every hazard's cut must be a crash state the model admits (a valid
	// downward-closed cut) that no SC prefix matches: it includes the
	// later witness persist while excluding the earlier one. Materialized,
	// the image misses the earlier persist's value — the recovery-visible
	// divergence.
	o := opt(t, "queue", "cwl", "epoch", 2, 16, 1)
	o.BreakBar = true
	run, rep := check(t, o)
	if rep.Hazards() == 0 {
		t.Fatal("fixture not flagged")
	}
	g, err := graph.Build(run.Trace, core.Params{Model: o.Model})
	if err != nil {
		t.Fatal(err)
	}
	validated := 0
	for _, f := range rep.Findings {
		if f.Severity != persistcheck.Hazard {
			continue
		}
		if f.WitnessA < 0 || f.WitnessB < 0 {
			t.Fatalf("hazard without witness pair: %s", f)
		}
		if len(f.Cut.Included) != g.Len() {
			t.Fatalf("cut over %d nodes, graph has %d", len(f.Cut.Included), g.Len())
		}
		if !g.Valid(f.Cut) {
			t.Fatalf("divergent cut not downward-closed: %s", f)
		}
		if !f.Cut.Included[f.WitnessB] || f.Cut.Included[f.WitnessA] {
			t.Fatalf("cut does not separate the witness pair: %s", f)
		}
		ae, be := g.Nodes[f.WitnessA].Event, g.Nodes[f.WitnessB].Event
		if ae.Seq >= be.Seq {
			t.Fatalf("witness pair not SC-ordered: #%d vs #%d", ae.Seq, be.Seq)
		}
		// The materialized state must miss A's persist: no SC prefix
		// containing B (and hence A) looks like this.
		if ae.Size == 8 && ae.Addr%8 == 0 && ae.Val != 0 {
			if got := g.Materialize(f.Cut).ReadWord(ae.Addr); got == ae.Val {
				t.Fatalf("materialized cut contains excluded persist %#x=%#x", uint64(ae.Addr), ae.Val)
			}
			validated++
		}
	}
	if validated == 0 {
		t.Fatal("no witness pair was image-validated")
	}
}

func TestReproRoundTrip(t *testing.T) {
	// A hazard's repro line must rebuild the identical workload options
	// and trace through the fault-campaign replay path (what `crashsim
	// -replay` does), and its cut must be valid for the rebuilt graph.
	o := opt(t, "journal", "cwl", "epoch", 2, 16, 1)
	o.BreakCommit = true
	run, rep := check(t, o)
	if len(rep.Findings) == 0 || rep.Findings[0].Repro == "" {
		t.Fatalf("no repro to round-trip:\n%s", rep)
	}
	s, err := fault.ParseRepro(rep.Findings[0].Repro)
	if err != nil {
		t.Fatal(err)
	}
	if s.Plan.Len() != 0 {
		t.Fatalf("checker repro carries a fault plan: %v", s.Plan)
	}
	o2, err := workload.FromScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if o2 != o {
		t.Fatalf("options did not round-trip:\n got %+v\nwant %+v", o2, o)
	}
	run2, err := workload.Build(o2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !run2.Trace.Equal(run.Trace) {
		t.Fatal("rebuilt trace differs from the checked trace")
	}
	g, err := graph.Build(run2.Trace, core.Params{Model: o2.Model})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cut.Included) != g.Len() || !g.Valid(s.Cut) {
		t.Fatal("repro cut invalid for the rebuilt graph")
	}
}

func TestSiteAttribution(t *testing.T) {
	// Hazards carry telemetry-convention site labels when the workload
	// provides a SiteLabel, pointing at the annotation site to fix.
	o := opt(t, "queue", "cwl", "epoch", 2, 16, 1)
	o.BreakBar = true
	_, rep := check(t, o)
	for _, f := range rep.Findings {
		if f.Kind == persistcheck.UnpersistedPublication && f.Site == "" {
			t.Fatalf("publication hazard without site label: %s", f)
		}
	}
}
