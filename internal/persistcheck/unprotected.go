package persistcheck

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/intervals"
	"repro/internal/memory"
)

// Unprotected-metadata lint. The other analyses verify *ordering*: the
// model cannot expose a publication without its payload. This one
// verifies *media robustness*: every word recovery dereferences — the
// declared publication words and order-after regions — should sit
// inside a Protected extent (a CRC frame, shadow checksum, or durable
// word; internal/durable), because a silent bit flip in an unprotected
// pointer re-frames the structure and recovery returns wrong data with
// a clean report. Findings are Robustness severity: the plain formats
// are ordering-correct by design and stay green under the hazard
// gates; `-require-integrity` turns these into failures.
//
// Each finding carries a repro whose cut is the full persist set (the
// quiescent post-run state — no ordering divergence needed) and whose
// plan flips one mid-byte bit in the flagged word: replaying it
// demonstrates the silent corruption directly.
func checkUnprotected(g *graph.Graph, idx *graphIndex, ann Annotations, cfg Config, r *Report) {
	if len(ann.Pubs) == 0 && len(ann.OrderAfter) == 0 {
		return
	}
	// Protected extents collapse into an interval set (adjacent and
	// overlapping extents merge), so coverage is one ordered query —
	// and a word jointly covered by two abutting frames correctly
	// counts as protected, which the old single-extent scan missed.
	prot := intervals.NewSet[memory.Addr]()
	for _, x := range ann.Protected {
		prot.Insert(x.Addr, x.Addr+memory.Addr(x.Size))
	}
	covered := func(a memory.Addr, size uint64) bool {
		return prot.Covers(a, a+memory.Addr(size))
	}
	report := func(name string, a memory.Addr, size uint64) {
		cut := fullCut(g)
		repro := ""
		if len(cfg.ReproParams) > 0 {
			s := fault.Scenario{
				Params: cfg.ReproParams,
				Cut:    cut,
				Plan: fault.Plan{Faults: []fault.Fault{{
					Kind: fault.FlipSilent,
					Addr: a,
					Bit:  6,
				}}},
			}
			repro = s.Repro()
		}
		r.add(Finding{
			Kind:     UnprotectedMetadata,
			Severity: Robustness,
			Msg: fmt.Sprintf("recovery metadata %q at %#x/%d has no integrity protection (CRC frame, shadow, or durable word)",
				name, uint64(a), size),
			Site:     cfg.site(a),
			WitnessA: -1,
			WitnessB: -1,
			Cut:      cut,
			Repro:    repro,
		}, cfg.limit())
	}
	seen := map[memory.Addr]bool{}
	for _, pub := range ann.Pubs {
		if seen[pub.Word] {
			continue
		}
		seen[pub.Word] = true
		if !covered(pub.Word, wordBytes) {
			report(pub.Name, pub.Word, wordBytes)
		}
	}
	for _, reg := range ann.OrderAfter {
		if seen[reg.Addr] {
			continue
		}
		seen[reg.Addr] = true
		if !covered(reg.Addr, reg.Size) {
			report(reg.Name, reg.Addr, reg.Size)
		}
	}
}

// fullCut includes every persist: the quiescent end-of-run state.
func fullCut(g *graph.Graph) graph.Cut {
	c := graph.Cut{Included: make([]bool, g.Len())}
	for i := range c.Included {
		c.Included[i] = true
	}
	return c
}
