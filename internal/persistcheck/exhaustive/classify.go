package exhaustive

import (
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/intervals"
	"repro/internal/memory"
	"repro/internal/observer"
	"repro/internal/sweep"
)

// outcome is the classification of one recovery signature.
type outcome struct {
	class      Class
	strictErr  string
	checkedErr string
}

// readEv is one observed pristine-image word load.
type readEv struct {
	addr memory.Addr
	val  uint64
}

// trie memoizes recovery outcomes by read signature: each node awaits
// one image word (the next address the recovery loads after the reads
// on the path so far) and branches on its value. Recovery is a
// deterministic function of the words it reads, so two images that
// agree on a complete root-to-leaf path share the leaf's outcome
// without re-running recovery. Reads of words the recovery itself
// wrote are excluded from signatures — their values are implied by
// the pristine reads before them.
//
// The trie is a pure cache shared across sweep workers (mutex-guarded,
// recoveries run unlocked): outcomes are a function of the image, so
// results are deterministic at any worker count.
type trie struct {
	mu     sync.Mutex
	root   tnode
	leaves int
}

type tnode struct {
	known bool // addr is set (some recovery reached and expanded this node)
	addr  memory.Addr
	kids  map[uint64]*tnode
	out   *outcome
}

// lookup walks img down the trie; ok is false on the first
// unexplored branch.
func (tr *trie) lookup(img []wordVal) (*outcome, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := &tr.root
	for {
		if n.out != nil {
			return n.out, true
		}
		if !n.known {
			return nil, false
		}
		kid := n.kids[lookupWord(img, n.addr)]
		if kid == nil {
			return nil, false
		}
		n = kid
	}
}

// insert records a completed recovery's read signature and outcome,
// returning the canonical outcome for the path (an earlier concurrent
// run's, if one raced).
func (tr *trie) insert(seq []readEv, out outcome) (*outcome, error) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := &tr.root
	for _, ev := range seq {
		if n.out != nil {
			return n.out, nil
		}
		if !n.known {
			n.known = true
			n.addr = ev.addr
			n.kids = make(map[uint64]*tnode, 2)
		} else if n.addr != ev.addr {
			return nil, fmt.Errorf("exhaustive: nondeterministic recovery: read %#x where a previous run read %#x after an identical prefix",
				uint64(ev.addr), uint64(n.addr))
		}
		kid := n.kids[ev.val]
		if kid == nil {
			kid = &tnode{}
			n.kids[ev.val] = kid
		}
		n = kid
	}
	if n.known {
		return nil, fmt.Errorf("exhaustive: nondeterministic recovery: one run finished where another kept reading %#x", uint64(n.addr))
	}
	if n.out == nil {
		o := out
		n.out = &o
		tr.leaves++
	}
	return n.out, nil
}

// classify returns img's outcome, running the recovery entry points
// only on a signature-cache miss.
func (tr *trie) classify(img []wordVal, strict observer.RecoverFunc, checked observer.CheckedRecoverFunc) (*outcome, error) {
	if o, ok := tr.lookup(img); ok {
		return o, nil
	}
	out, seq := execClassify(img, strict, checked)
	return tr.insert(seq, out)
}

// execClassify materializes img, runs strict then checked recovery
// with read recording, and classifies the state.
func execClassify(img []wordVal, strict observer.RecoverFunc, checked observer.CheckedRecoverFunc) (outcome, []readEv) {
	im := memory.NewImage()
	for _, wv := range img {
		im.WriteWord(wv.addr, wv.val)
	}
	// Words the recovery itself wrote (salvage repairs): reads of
	// those are implied by earlier pristine reads and are excluded
	// from the signature.
	written := intervals.NewSet[memory.Addr]()
	var seq []readEv
	im.Observe(func(a memory.Addr, v uint64) {
		if !written.Contains(a) {
			seq = append(seq, readEv{addr: a, val: v})
		}
	}, func(a memory.Addr) {
		written.Insert(a, a+memory.WordSize)
	})
	sErr := strict(im)
	_, cErr := checked(im)
	im.Observe(nil, nil)

	out := outcome{}
	switch {
	case cErr != nil:
		out.class = ClassHazard
	case sErr != nil:
		out.class = ClassDetected
	default:
		out.class = ClassRecovered
	}
	if sErr != nil {
		out.strictErr = sErr.Error()
	}
	if cErr != nil {
		out.checkedErr = cErr.Error()
	}
	return out, seq
}

// classifyAll classifies every distinct reachable image through the
// shared trie, tallies classes in discovery order, and minimizes the
// first hazardous image's representative cut.
func classifyAll(g *graph.Graph, sp *space, strict observer.RecoverFunc, checked observer.CheckedRecoverFunc, cfg Config, res *Result) error {
	tr := &trie{}
	outs := make([]*outcome, len(sp.finals))
	scfg := cfg.Sweep
	scfg.Name = "exhaustive-classify"
	err := sweep.Run(len(sp.finals), scfg, func(i int) (*outcome, error) {
		return tr.classify(sp.finals[i].img, strict, checked)
	}, func(i int, o *outcome) error {
		outs[i] = o
		return nil
	})
	if err != nil {
		return err
	}
	firstHazard := -1
	for i, o := range outs {
		switch o.class {
		case ClassRecovered:
			res.Recovered++
		case ClassDetected:
			res.Detected++
		case ClassHazard:
			res.Hazards++
			if firstHazard < 0 {
				firstHazard = i
			}
		}
	}
	res.Signatures = tr.leaves
	if firstHazard >= 0 {
		ce, err := minimize(g, sp.finals[firstHazard], outs[firstHazard], tr, strict, checked, cfg)
		if err != nil {
			return err
		}
		res.Counterexample = ce
	}
	return nil
}

// minimize greedily shrinks a hazardous cut: walking included nodes
// from the latest down, it drops each node (with its dependents, to
// keep the cut downward-closed) whenever the resulting state still
// classifies as a hazard.
func minimize(g *graph.Graph, f *final, hazard *outcome, tr *trie, strict observer.RecoverFunc, checked observer.CheckedRecoverFunc, cfg Config) (*Counterexample, error) {
	n := g.Len()
	cut := cutOf(f.dec, n)
	orig := cut.Size()
	cur := hazard
	budget := cfg.minimizeBudget()
	for i := n - 1; i >= 0 && budget > 0; i-- {
		if !cut.Included[i] {
			continue
		}
		cand := graph.Cut{Included: append([]bool(nil), cut.Included...)}
		cand.Included[i] = false
		// Forward-propagate the exclusion to keep the cut
		// downward-closed.
		for j := i + 1; j < n; j++ {
			if !cand.Included[j] {
				continue
			}
			for _, e := range g.Nodes[j].In {
				if !cand.Included[e.From] {
					cand.Included[j] = false
					break
				}
			}
		}
		budget--
		o, err := tr.classify(imgOfCut(g, cand), strict, checked)
		if err != nil {
			return nil, err
		}
		if o.class == ClassHazard {
			cut, cur = cand, o
		}
	}
	ce := &Counterexample{
		Cut:           cut,
		Included:      cut.Size(),
		MinimizedFrom: orig,
		StrictErr:     cur.strictErr,
		CheckedErr:    cur.checkedErr,
	}
	if len(cfg.ReproParams) > 0 {
		s := fault.Scenario{Params: cfg.ReproParams, Cut: cut}
		ce.Repro = s.Repro()
	}
	return ce, nil
}
