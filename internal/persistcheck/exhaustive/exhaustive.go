// Package exhaustive is a bounded model checker over the persist-order
// constraint graph: it enumerates the *complete* reachable
// recovery-state space of a traced execution — every consistent cut of
// the graph, i.e. every NVRAM state a crash can expose under the model
// — and classifies each reachable post-crash state through the
// structure's own recovery entry points.
//
// Enumerating cuts directly is hopeless (the count is exponential in
// the antichain width of the graph), so the checker works at two
// levels of reduction, both exact with respect to the set of reachable
// states:
//
//   - Image dedup with antichain subsumption. Walking nodes in trace
//     (topological) order, a search state is the pair (partial NVRAM
//     image, killed-set) — the bytes decided persists wrote, plus the
//     future nodes an excluded ancestor already disqualifies. Two cuts
//     differing only in persists that cancel out (overwritten words,
//     rewrites of the same value, zero-writes to zero words) collapse
//     into one state. A state whose image equals another's and whose
//     killed-set is a superset explores a subset of the other's
//     reachable images, so it is folded away: the frontier kept per
//     image is an antichain of maximal states under that dominance
//     order.
//   - Read-set memoization. Distinct images whose differences recovery
//     never reads recover identically. Recovery outcomes are cached in
//     a decision trie keyed on the exact (address, value) sequence a
//     recovery run actually loaded from the image, so the number of
//     real recovery executions is the number of distinct recovery
//     *signatures*, usually orders of magnitude below the distinct
//     image count.
//
// Every reachable image is classified by running strict recovery and
// checked (salvage + invariants) recovery:
//
//   - recovered: both succeed — the state is a prefix-consistent
//     recovered state.
//   - detected: strict recovery errors but salvage flags and repairs
//     the damage — a torn state the format detects.
//   - hazard: checked recovery fails — silent corruption or
//     unrecoverable loss.
//
// The verdict aggregates: durably linearizable (every reachable state
// recovered), detectably recoverable (every torn state detected), or
// hazardous — with a greedily minimized counterexample cut serialized
// as a `crashsim -replay` repro line.
package exhaustive

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/observer"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Class is the classification of one reachable post-crash image.
type Class uint8

const (
	// ClassRecovered: strict recovery succeeds.
	ClassRecovered Class = iota
	// ClassDetected: strict recovery errors, checked recovery flags
	// and salvages — the torn state is detectable.
	ClassDetected
	// ClassHazard: checked recovery fails — silent corruption or
	// unrecoverable state.
	ClassHazard
)

func (c Class) String() string {
	switch c {
	case ClassRecovered:
		return "recovered"
	case ClassDetected:
		return "detected"
	case ClassHazard:
		return "hazard"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Verdict is the aggregate correctness condition the structure meets
// on this trace under this model.
type Verdict uint8

const (
	// DurablyLinearizable: every reachable crash state recovers to a
	// consistent prefix with no intervention.
	DurablyLinearizable Verdict = iota
	// DetectablyRecoverable: some reachable states are torn, but every
	// one is flagged by recovery and salvaged.
	DetectablyRecoverable
	// Hazardous: at least one reachable state defeats checked
	// recovery.
	Hazardous
)

func (v Verdict) String() string {
	switch v {
	case DurablyLinearizable:
		return "durably-linearizable"
	case DetectablyRecoverable:
		return "detectably-recoverable"
	case Hazardous:
		return "hazardous"
	}
	return fmt.Sprintf("Verdict(%d)", uint8(v))
}

// Config bounds and parameterizes a check.
type Config struct {
	// Budget caps the number of simultaneously tracked search states
	// plus distinct reachable images; exceeding it aborts the check
	// with an error (the checker is *bounded*: it proves or refuses,
	// never silently samples). 0 means 1<<20.
	Budget int
	// MaxPersists refuses graphs larger than this before enumerating.
	// 0 means 4096.
	MaxPersists int
	// Sweep configures parallel state expansion and classification;
	// results are byte-identical at any worker count.
	Sweep sweep.Config
	// ReproParams, when set, are serialized into counterexample repro
	// lines (the workload's Options.Params()).
	ReproParams []fault.Param
	// MinimizeBudget caps counterexample-minimization classification
	// probes. 0 means 4096.
	MinimizeBudget int
}

func (cfg Config) budget() int {
	if cfg.Budget > 0 {
		return cfg.Budget
	}
	return 1 << 20
}

func (cfg Config) maxPersists() int {
	if cfg.MaxPersists > 0 {
		return cfg.MaxPersists
	}
	return 4096
}

func (cfg Config) minimizeBudget() int {
	if cfg.MinimizeBudget > 0 {
		return cfg.MinimizeBudget
	}
	return 4096
}

// Counterexample is a minimized hazardous crash state.
type Counterexample struct {
	// Cut is the consistent cut exposing the hazard.
	Cut graph.Cut
	// Included is the cut's persist count after minimization;
	// MinimizedFrom before.
	Included      int
	MinimizedFrom int
	// StrictErr and CheckedErr are the recovery errors the state
	// produced ("" for none).
	StrictErr  string
	CheckedErr string
	// Repro is the one-line crashsim -replay scenario (empty without
	// Config.ReproParams).
	Repro string
}

// Result is the outcome of one exhaustive check.
type Result struct {
	Model    core.Model
	Persists int
	// Cuts is the exact number of consistent cuts (reachable crash
	// states before reduction), saturating at MaxUint64.
	Cuts          uint64
	CutsSaturated bool
	// States is the number of distinct reachable NVRAM images.
	States int
	// PeakLive is the peak simultaneously tracked search-state count;
	// Subsumed counts states folded by the antichain reduction.
	PeakLive int
	Subsumed uint64
	// Signatures is the number of distinct recovery read-set
	// signatures — the count of real recovery executions the
	// memoization trie could not avoid.
	Signatures int
	// Recovered/Detected/Hazards tally images per class.
	Recovered int
	Detected  int
	Hazards   int
	Verdict   Verdict
	// Counterexample is the first (in deterministic discovery order)
	// hazardous image's minimized cut; nil unless Verdict is
	// Hazardous.
	Counterexample *Counterexample
}

// String renders the result as the CLI's stable multi-line form.
func (r *Result) String() string {
	cuts := fmt.Sprintf("%d", r.Cuts)
	if r.CutsSaturated {
		cuts = ">=18446744073709551615"
	}
	s := fmt.Sprintf("exhaustive: model=%v persists=%d cuts=%s states=%d signatures=%d peak-live=%d subsumed=%d\n",
		r.Model, r.Persists, cuts, r.States, r.Signatures, r.PeakLive, r.Subsumed)
	s += fmt.Sprintf("exhaustive: recovered=%d detected=%d hazards=%d verdict=%v\n",
		r.Recovered, r.Detected, r.Hazards, r.Verdict)
	if ce := r.Counterexample; ce != nil {
		s += fmt.Sprintf("exhaustive: counterexample cut %d/%d persists (minimized from %d): strict=%q checked=%q\n",
			ce.Included, r.Persists, ce.MinimizedFrom, ce.StrictErr, ce.CheckedErr)
		if ce.Repro != "" {
			s += "  repro: " + ce.Repro + "\n"
		}
	}
	return s
}

// Check builds the persist-order graph for the trace under model p and
// runs CheckGraph.
func Check(tr *trace.Trace, p core.Params, strict observer.RecoverFunc, checked observer.CheckedRecoverFunc, cfg Config) (*Result, error) {
	g, err := graph.Build(tr, p)
	if err != nil {
		return nil, err
	}
	return CheckGraph(g, p.Model, strict, checked, cfg)
}

// CheckGraph enumerates every reachable post-crash image of g and
// classifies each through the recovery entry points. strict must be
// non-nil; a nil checked falls back to strict (no Detected class —
// every strict failure is then a hazard).
func CheckGraph(g *graph.Graph, model core.Model, strict observer.RecoverFunc, checked observer.CheckedRecoverFunc, cfg Config) (*Result, error) {
	if strict == nil {
		return nil, fmt.Errorf("exhaustive: nil strict recovery")
	}
	if checked == nil {
		checked = func(im *memory.Image) (fault.RecoveryReport, error) {
			return fault.RecoveryReport{}, strict(im)
		}
	}
	if g.Len() > cfg.maxPersists() {
		return nil, fmt.Errorf("exhaustive: %d persists exceeds MaxPersists %d (shrink the fixture or raise the bound)",
			g.Len(), cfg.maxPersists())
	}
	space, err := enumerate(g, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Model:         model,
		Persists:      g.Len(),
		Cuts:          space.cuts,
		CutsSaturated: space.cutsSat,
		States:        len(space.finals),
		PeakLive:      space.peakLive,
		Subsumed:      space.subsumed,
	}
	if err := classifyAll(g, space, strict, checked, cfg, res); err != nil {
		return nil, err
	}
	switch {
	case res.Hazards > 0:
		res.Verdict = Hazardous
	case res.Detected > 0:
		res.Verdict = DetectablyRecoverable
	default:
		res.Verdict = DurablyLinearizable
	}
	return res, nil
}
