package exhaustive

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/workload"
)

// fixture names a workload grid point by its flag spellings. wl "kv"
// builds the sharded store (inserts = ops; readFrac, 0.75 default,
// sets the read mix).
type fixture struct {
	wl, design, policy              string
	threads, inserts, payload       int
	seed                            int64
	readFrac                        float64
	breakBar, omitComp, breakCommit bool
	omitRecipe, integrity, sparse   bool
}

// buildRun traces a workload fixture for checking and returns its
// target model alongside. The returned Options are zero for kv
// fixtures (they parameterize differently and seed no broken
// variants, so nothing downstream needs their repro params).
func buildRun(t *testing.T, fx fixture) (*workload.Run, workload.Options, core.Model) {
	t.Helper()
	if fx.design == "" {
		fx.design = "cwl"
	}
	if fx.payload == 0 {
		fx.payload = 16
	}
	if fx.seed == 0 {
		fx.seed = 1
	}
	design, err := workload.ParseDesign(fx.design)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := workload.ParsePolicy(fx.policy)
	if err != nil {
		t.Fatal(err)
	}
	model := workload.ModelForPolicy(fx.wl, policy)
	if fx.wl == "kv" {
		jp, err := workload.JournalPolicy(policy)
		if err != nil {
			t.Fatal(err)
		}
		if fx.readFrac == 0 {
			fx.readFrac = 0.75
		}
		run, err := workload.BuildKV(workload.KVOptions{
			Shards: 2, Keys: 8, Threads: fx.threads, Ops: fx.inserts,
			ReadFrac: fx.readFrac, ZipfS: 1.1, Policy: jp,
			Integrity: fx.integrity, Seed: fx.seed, PolicyStr: fx.policy,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return run, workload.Options{}, model
	}
	o := workload.Options{
		Workload: fx.wl, Design: design, Policy: policy, Model: model,
		Threads: fx.threads, Inserts: fx.inserts, Payload: fx.payload, Seed: fx.seed,
		BreakBar: fx.breakBar, OmitComp: fx.omitComp,
		BreakCommit: fx.breakCommit, OmitRecipe: fx.omitRecipe,
		Integrity: fx.integrity, SparseBlocks: fx.sparse,
		DesignStr: fx.design, PolicyStr: fx.policy,
	}
	run, err := workload.Build(o, nil)
	if err != nil {
		t.Fatalf("build %+v: %v", o, err)
	}
	return run, o, model
}

func check(t *testing.T, run *workload.Run, model core.Model, cfg Config) *Result {
	t.Helper()
	res, err := Check(run.Trace, core.Params{Model: model}, run.Recover, run.Checked, cfg)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}

// TestAgainstBruteForce pins the reduced enumeration to ground truth:
// on a fixture small enough to enumerate every consistent cut
// directly, the checker's cut count, distinct-image count, per-class
// tallies, and verdict must all match the brute-force sweep.
func TestAgainstBruteForce(t *testing.T) {
	for _, tc := range []struct {
		name string
		fx   fixture
	}{
		{"queue-epoch", fixture{wl: "queue", policy: "epoch", threads: 1, inserts: 2, payload: 8}},
		{"queue-broken", fixture{wl: "queue", policy: "epoch", threads: 1, inserts: 2, payload: 8, breakBar: true}},
		{"journal-strict", fixture{wl: "journal", policy: "strict", threads: 1, inserts: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run, _, model := buildRun(t, tc.fx)
			p := core.Params{Model: model}
			g, err := graph.Build(run.Trace, p)
			if err != nil {
				t.Fatal(err)
			}
			res := check(t, run, model, Config{})
			if res.Cuts > 500000 || res.CutsSaturated {
				t.Fatalf("fixture too large for brute force: %d cuts", res.Cuts)
			}

			// Ground truth: enumerate every cut, dedup images by
			// signature, classify each image once.
			images := make(map[string][]wordVal)
			var order []string
			cuts := 0
			g.EnumerateCuts(func(c graph.Cut) bool {
				cuts++
				img := imgOfCut(g, c)
				k := imgKey(img)
				if _, ok := images[k]; !ok {
					images[k] = img
					order = append(order, k)
				}
				return cuts <= 1000000
			})
			if uint64(cuts) != res.Cuts || res.CutsSaturated {
				t.Errorf("cuts: brute %d, checker %d (sat %v)", cuts, res.Cuts, res.CutsSaturated)
			}
			if len(images) != res.States {
				t.Errorf("states: brute %d, checker %d", len(images), res.States)
			}
			var rec, det, haz int
			for _, k := range order {
				out, _ := execClassify(images[k], run.Recover, run.Checked)
				switch out.class {
				case ClassRecovered:
					rec++
				case ClassDetected:
					det++
				case ClassHazard:
					haz++
				}
			}
			if rec != res.Recovered || det != res.Detected || haz != res.Hazards {
				t.Errorf("classes: brute %d/%d/%d, checker %d/%d/%d",
					rec, det, haz, res.Recovered, res.Detected, res.Hazards)
			}
			t.Logf("%s: persists=%d cuts=%d states=%d signatures=%d classes=%d/%d/%d verdict=%v",
				tc.name, res.Persists, res.Cuts, res.States, res.Signatures,
				res.Recovered, res.Detected, res.Hazards, res.Verdict)
		})
	}
}
