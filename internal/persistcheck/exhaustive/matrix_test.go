package exhaustive

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/nvram"
	"repro/internal/observer"
	"repro/internal/persistcheck"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// cleanMatrix is the structure × policy grid CI proves durably
// linearizable. Journal fixtures use sparse blocks: patterned 64-byte
// blocks are ~16 mutually unordered nonzero persists per transaction
// under epoch/strand, an irreducibly exponential image space, while
// sparse blocks exercise the same commit and recovery ordering.
var cleanMatrix = []struct {
	name string
	fx   fixture
	big  bool // six-figure state space: skipped under -short
}{
	{name: "queue-cwl-strict", fx: fixture{wl: "queue", policy: "strict", threads: 2, inserts: 6}},
	{name: "queue-cwl-epoch", fx: fixture{wl: "queue", policy: "epoch", threads: 2, inserts: 6}},
	{name: "queue-cwl-strand", fx: fixture{wl: "queue", policy: "strand", threads: 2, inserts: 2, payload: 8}},
	{name: "queue-2lc-epoch", fx: fixture{wl: "queue", design: "2lc", policy: "epoch", threads: 2, inserts: 6}},
	{name: "journal-strict", fx: fixture{wl: "journal", policy: "strict", threads: 2, inserts: 4, sparse: true}},
	{name: "journal-epoch", fx: fixture{wl: "journal", policy: "epoch", threads: 2, inserts: 4, sparse: true}},
	{name: "journal-strand", fx: fixture{wl: "journal", policy: "strand", threads: 2, inserts: 2, sparse: true}, big: true},
	{name: "pstm-strict", fx: fixture{wl: "pstm", policy: "strict", threads: 2, inserts: 6}},
	{name: "pstm-epoch", fx: fixture{wl: "pstm", policy: "epoch", threads: 2, inserts: 6}},
	{name: "pstm-strand", fx: fixture{wl: "pstm", policy: "strand", threads: 2, inserts: 6}},
	{name: "queue-epoch-integrity", fx: fixture{wl: "queue", policy: "epoch", threads: 2, inserts: 6, integrity: true}},
	{name: "journal-epoch-integrity", fx: fixture{wl: "journal", policy: "epoch", threads: 2, inserts: 4, integrity: true, sparse: true}},
	// The sharded kv store at a 75%-read serving mix: 46 persists across
	// two shards; the strand space reduces ~36M cuts to ~10k states.
	{name: "kv-strict", fx: fixture{wl: "kv", policy: "strict", threads: 2, inserts: 8, seed: 42}},
	{name: "kv-epoch", fx: fixture{wl: "kv", policy: "epoch", threads: 2, inserts: 8, seed: 42}},
	{name: "kv-strand", fx: fixture{wl: "kv", policy: "strand", threads: 2, inserts: 8, seed: 42}},
	// The write-heavier mix is the stress case: 67 persists, ~1.3M
	// reduced states from ~149G cuts under strand.
	{name: "kv-strand-write-heavy", fx: fixture{wl: "kv", policy: "strand", threads: 2, inserts: 6, readFrac: 0.5, seed: 42}, big: true},
}

// TestCleanMatrix proves every reachable crash state of each clean
// fixture recovers: verdict durably-linearizable, zero detected or
// hazardous images.
func TestCleanMatrix(t *testing.T) {
	for _, tc := range cleanMatrix {
		t.Run(tc.name, func(t *testing.T) {
			if tc.big && testing.Short() {
				t.Skip("six-figure state space, skipped under -short")
			}
			run, _, model := buildRun(t, tc.fx)
			res := check(t, run, model, Config{Budget: 1 << 21})
			if res.Verdict != DurablyLinearizable || res.Detected != 0 || res.Hazards != 0 {
				t.Fatalf("%s: want durably-linearizable, got %v (r/d/h %d/%d/%d)",
					tc.name, res.Verdict, res.Recovered, res.Detected, res.Hazards)
			}
			if res.States == 0 || res.Cuts == 0 {
				t.Fatalf("%s: empty state space (states %d cuts %d)", tc.name, res.States, res.Cuts)
			}
			t.Logf("%s: cuts=%d states=%d signatures=%d", tc.name, res.Cuts, res.States, res.Signatures)
		})
	}
}

// brokenMatrix pins the verdict for every seeded ordering bug: silent
// corruption is hazardous, while formats whose salvage detects and
// discards the torn state stay detectably-recoverable.
var brokenMatrix = []struct {
	name    string
	fx      fixture
	verdict Verdict
}{
	{name: "queue-break-barrier", fx: fixture{wl: "queue", policy: "epoch", threads: 2, inserts: 6, breakBar: true},
		verdict: DetectablyRecoverable},
	{name: "queue-2lc-omit-completion", fx: fixture{wl: "queue", design: "2lc", policy: "epoch", threads: 2, inserts: 6, omitComp: true},
		verdict: DetectablyRecoverable},
	{name: "journal-break-commit", fx: fixture{wl: "journal", policy: "epoch", threads: 2, inserts: 4, breakCommit: true, sparse: true},
		verdict: Hazardous},
	{name: "pstm-racing", fx: fixture{wl: "pstm", policy: "racing", threads: 2, inserts: 6},
		verdict: Hazardous},
	// The integrity formats repair both hazards: break-commit garbage is
	// discarded by record CRCs, racing pstm words by shadow checksums.
	{name: "journal-break-commit-integrity", fx: fixture{wl: "journal", policy: "epoch", threads: 2, inserts: 4, breakCommit: true, integrity: true, sparse: true},
		verdict: DurablyLinearizable},
	{name: "pstm-racing-integrity", fx: fixture{wl: "pstm", policy: "racing", threads: 2, inserts: 6, integrity: true},
		verdict: DurablyLinearizable},
}

// TestBrokenMatrix checks the seeded-bug verdicts, and for every
// hazardous fixture replays the minimized counterexample through the
// observer: the repro line must reproduce a failure class, which is the
// same path `crashsim -replay` takes.
func TestBrokenMatrix(t *testing.T) {
	for _, tc := range brokenMatrix {
		t.Run(tc.name, func(t *testing.T) {
			run, opts, model := buildRun(t, tc.fx)
			res := check(t, run, model, Config{Budget: 1 << 21, ReproParams: opts.Params()})
			if res.Verdict != tc.verdict {
				t.Fatalf("%s: want %v, got %v (r/d/h %d/%d/%d)",
					tc.name, tc.verdict, res.Verdict, res.Recovered, res.Detected, res.Hazards)
			}
			if res.Verdict != Hazardous {
				return
			}
			ce := res.Counterexample
			if ce == nil {
				t.Fatal("hazardous verdict without counterexample")
			}
			if ce.CheckedErr == "" {
				t.Error("counterexample without checked recovery error")
			}
			if ce.Included > ce.MinimizedFrom {
				t.Errorf("minimization grew the cut: %d from %d", ce.Included, ce.MinimizedFrom)
			}
			if ce.Repro == "" {
				t.Fatal("counterexample without repro line")
			}
			s, err := fault.ParseRepro(ce.Repro)
			if err != nil {
				t.Fatalf("repro line does not parse: %v\n%s", err, ce.Repro)
			}
			ropts, err := workload.FromScenario(s)
			if err != nil {
				t.Fatal(err)
			}
			if ropts != opts {
				t.Errorf("repro params rebuild different options:\n  %+v\n  %+v", ropts, opts)
			}
			rrun, err := workload.Build(ropts, nil)
			if err != nil {
				t.Fatal(err)
			}
			class, _ := observer.Replay(rrun.Trace, core.Params{Model: ropts.Model}, rrun.Checked, s, nvram.Config{})
			if !class.Failure() {
				t.Errorf("counterexample does not reproduce under the observer: class %v\n%s", class, ce.Repro)
			}
		})
	}
}

// TestWitnessPairCrossValidation pins the relationship between the
// static witness-pair checker and the exhaustive one on the full
// fixture grid: every exhaustively reachable bad state (verdict below
// durably-linearizable) has a witness-pair hazard, so static hazards
// are a superset of reachable ones. The converse over-approximation is
// real and pinned too: journal-omit-recipe is flagged statically
// (unbound strand reads) yet has no reachable corruption on this grid.
func TestWitnessPairCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full matrix, skipped under -short")
	}
	type cv struct {
		name          string
		fx            fixture
		wantWitnessed bool
	}
	cases := []cv{
		{"journal-omit-recipe", fixture{wl: "journal", policy: "strand", threads: 2, inserts: 2, omitRecipe: true, sparse: true}, true},
		// Racing kv is the second pinned over-approximation: the
		// epoch-race detector flags same-block cross-thread persists the
		// dropped inner barrier leaves unordered, but journal replay
		// repairs every reachable image on this grid.
		{"kv-racing", fixture{wl: "kv", policy: "racing", threads: 2, inserts: 8, readFrac: 0.5, seed: 42}, true},
	}
	for _, m := range cleanMatrix {
		cases = append(cases, cv{m.name, m.fx, false})
	}
	for _, m := range brokenMatrix {
		if !strings.Contains(m.name, "integrity") {
			cases = append(cases, cv{m.name, m.fx, true})
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run, _, model := buildRun(t, tc.fx)
			rep, err := persistcheck.Check(run.Trace, core.Params{Model: model}, run.Checks,
				persistcheck.Config{SiteLabel: run.SiteLabel})
			if err != nil {
				t.Fatal(err)
			}
			res := check(t, run, model, Config{Budget: 1 << 21})
			witnessed := rep.Hazards() > 0
			if res.Verdict != DurablyLinearizable && !witnessed {
				t.Errorf("%s: reachable bad states (%v) but no witness-pair hazard", tc.name, res.Verdict)
			}
			if witnessed != tc.wantWitnessed {
				t.Errorf("%s: witness hazards %d, want witnessed=%v", tc.name, rep.Hazards(), tc.wantWitnessed)
			}
		})
	}
}

// TestObserverAgreement cross-validates against the brute-force
// observer on enumerable grids: the cut counts must match exactly, and
// strict-recovery corruption must be visible to both checkers the same
// way (the observer's strict sweep sees a corrupt cut iff the
// exhaustive checker classified some image detected or worse).
func TestObserverAgreement(t *testing.T) {
	for _, tc := range []struct {
		name string
		fx   fixture
	}{
		{"queue-epoch", fixture{wl: "queue", policy: "epoch", threads: 1, inserts: 2, payload: 8}},
		{"queue-break-barrier", fixture{wl: "queue", policy: "epoch", threads: 1, inserts: 2, payload: 8, breakBar: true}},
		{"journal-strict", fixture{wl: "journal", policy: "strict", threads: 1, inserts: 2, sparse: true}},
		{"pstm-racing", fixture{wl: "pstm", policy: "racing", threads: 2, inserts: 6}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run, _, model := buildRun(t, tc.fx)
			p := core.Params{Model: model}
			res := check(t, run, model, Config{})
			out, err := observer.Exhaustive(run.Trace, p, run.Recover, res.Persists)
			if err != nil {
				t.Fatal(err)
			}
			if uint64(out.Cuts) != res.Cuts || res.CutsSaturated {
				t.Errorf("cut counts disagree: observer %d, exhaustive %d (sat %v)",
					out.Cuts, res.Cuts, res.CutsSaturated)
			}
			if out.Corrupt > 0 && res.Verdict == DurablyLinearizable {
				t.Errorf("observer found corruption (%v) but exhaustive verdict is durably-linearizable",
					out.FirstCorruption)
			}
			if res.Detected > 0 && out.Corrupt == 0 {
				t.Errorf("exhaustive detected %d strict-visible images, observer saw none", res.Detected)
			}
		})
	}
}

// TestParallelDeterminism pins byte-identical results — tallies,
// counterexample cut, repro line — across sweep worker counts on a
// hazardous fixture, where classification order could plausibly leak
// into the outcome.
func TestParallelDeterminism(t *testing.T) {
	fx := fixture{wl: "journal", policy: "epoch", threads: 2, inserts: 4, breakCommit: true, sparse: true}
	run, opts, model := buildRun(t, fx)
	var results []*Result
	for _, workers := range []int{1, 4, 8} {
		cfg := Config{Budget: 1 << 21, ReproParams: opts.Params(),
			Sweep: sweep.Config{Parallel: workers}}
		results = append(results, check(t, run, model, cfg))
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("results differ between 1 and %d workers:\n%v\n%v", []int{1, 4, 8}[i], results[0], results[i])
		}
	}
	if results[0].Verdict != Hazardous || results[0].Counterexample.Repro == "" {
		t.Fatalf("fixture lost its hazard: %v", results[0])
	}
}

// TestBudgetRefusal checks the bounded-checker contract: exceeding the
// state budget or the persist cap is a refusal with a clear error, not
// a silent sample.
func TestBudgetRefusal(t *testing.T) {
	run, _, model := buildRun(t, fixture{wl: "journal", policy: "epoch", threads: 2, inserts: 4, sparse: true})
	_, err := Check(run.Trace, core.Params{Model: model}, run.Recover, run.Checked, Config{Budget: 64})
	if err == nil || !strings.Contains(err.Error(), "state budget 64 exceeded") {
		t.Errorf("want state-budget error, got %v", err)
	}
	_, err = Check(run.Trace, core.Params{Model: model}, run.Recover, run.Checked, Config{MaxPersists: 10})
	if err == nil || !strings.Contains(err.Error(), "exceeds MaxPersists 10") {
		t.Errorf("want MaxPersists error, got %v", err)
	}
}
