package exhaustive

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/intervals"
	"repro/internal/memory"
	"repro/internal/sweep"
)

// bits is a fixed-width bitset over graph node IDs.
type bits []uint64

func newBits(n int) bits { return make(bits, (n+63)/64) }

func (b bits) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bits) clone() bits {
	c := make(bits, len(b))
	copy(c, b)
	return c
}

// withBit returns a copy of b with bit i set.
func (b bits) withBit(i int) bits {
	c := b.clone()
	c[i>>6] |= 1 << (uint(i) & 63)
	return c
}

// withOr returns a copy of b with bit i and all of o's bits set.
func (b bits) withOr(i int, o bits) bits {
	c := b.clone()
	for w := range o {
		c[w] |= o[w]
	}
	c[i>>6] |= 1 << (uint(i) & 63)
	return c
}

// coversFrom reports whether every bit in [from, n) is set.
func (b bits) coversFrom(from, n int) bool {
	if from >= n {
		return true
	}
	w := from >> 6
	head := ^uint64(0) << (uint(from) & 63)
	lastW := (n - 1) >> 6
	tail := ^uint64(0) >> (63 - (uint(n-1) & 63))
	if w == lastW {
		return b[w]&head&tail == head&tail
	}
	if b[w]&head != head {
		return false
	}
	for w++; w < lastW; w++ {
		if b[w] != ^uint64(0) {
			return false
		}
	}
	return b[lastW]&tail == tail
}

// subsetFrom reports whether b's bits in [from, n) are a subset of o's.
func (b bits) subsetFrom(o bits, from, n int) bool {
	if from >= n {
		return true
	}
	w := from >> 6
	head := ^uint64(0) << (uint(from) & 63)
	if b[w]&head&^o[w] != 0 {
		return false
	}
	for w++; w < len(b); w++ {
		if b[w]&^o[w] != 0 {
			return false
		}
	}
	return true
}

// wordVal is one written, nonzero NVRAM word. A state's image is a
// sorted slice of these; a zero-valued word is canonically absent
// (indistinguishable from never-written NVRAM).
type wordVal struct {
	addr memory.Addr
	val  uint64
}

// wordWrite is one persist's effect on one aligned word.
type wordWrite struct {
	addr       memory.Addr
	mask, bits uint64
}

// nodeWrites splits a persist event into per-word masked writes.
func nodeWrites(g *graph.Graph, id int) []wordWrite {
	n := g.Nodes[id]
	if !n.Event.Kind.IsAccess() {
		return nil
	}
	addr, size, val := n.Event.Addr, int(n.Event.Size), n.Event.Val
	var out []wordWrite
	for size > 0 {
		w := memory.AlignDown(addr, memory.WordSize)
		off := int(addr - w)
		span := memory.WordSize - off
		if span > size {
			span = size
		}
		var mask uint64
		if span == 8 {
			mask = ^uint64(0)
		} else {
			mask = (1<<(8*uint(span)) - 1) << (8 * uint(off))
		}
		out = append(out, wordWrite{
			addr: w,
			mask: mask,
			bits: (val << (8 * uint(off))) & mask,
		})
		addr += memory.Addr(span)
		val >>= 8 * uint(span)
		size -= span
	}
	return out
}

// applyWrites returns img with ws applied (read-modify-write at word
// granularity). changed is false when every write was a no-op, in
// which case img is returned unchanged (and may be shared).
func applyWrites(img []wordVal, ws []wordWrite) (out []wordVal, changed bool) {
	out = img
	for _, w := range ws {
		i := sort.Search(len(out), func(i int) bool { return out[i].addr >= w.addr })
		var old uint64
		if i < len(out) && out[i].addr == w.addr {
			old = out[i].val
		}
		nv := (old &^ w.mask) | w.bits
		if nv == old {
			continue
		}
		switch {
		case old == 0: // insert
			next := make([]wordVal, len(out)+1)
			copy(next, out[:i])
			next[i] = wordVal{addr: w.addr, val: nv}
			copy(next[i+1:], out[i:])
			out = next
		case nv == 0: // delete (canonical zero-is-absent form)
			next := make([]wordVal, len(out)-1)
			copy(next, out[:i])
			copy(next[i:], out[i+1:])
			out = next
		default: // replace
			next := make([]wordVal, len(out))
			copy(next, out)
			next[i].val = nv
			out = next
		}
		changed = true
	}
	return out, changed
}

// lookupWord reads one aligned word from a canonical image.
func lookupWord(img []wordVal, a memory.Addr) uint64 {
	i := sort.Search(len(img), func(i int) bool { return img[i].addr >= a })
	if i < len(img) && img[i].addr == a {
		return img[i].val
	}
	return 0
}

// imgKey serializes a canonical image for map lookup.
func imgKey(img []wordVal) string {
	b := make([]byte, 16*len(img))
	for i, wv := range img {
		binary.LittleEndian.PutUint64(b[16*i:], uint64(wv.addr))
		binary.LittleEndian.PutUint64(b[16*i+8:], wv.val)
	}
	return string(b)
}

// state is one search state after deciding nodes [0, t): the partial
// image those decisions built, the future nodes an excluded ancestor
// disqualifies, and a representative decision vector.
type state struct {
	img    []wordVal
	ikey   string
	killed bits
	dec    bits
	final  bool
}

// final is one distinct reachable image with a representative cut.
type final struct {
	img []wordVal
	dec bits
}

// space is the fully enumerated, reduced state space.
type space struct {
	finals   []*final // distinct reachable images, discovery order
	cuts     uint64   // exact total consistent cuts (saturating)
	cutsSat  bool
	peakLive int
	subsumed uint64
	// touched is the written persistent address range, tracked as
	// coalesced intervals (stats + sanity: every image word must fall
	// inside it).
	touched *intervals.Set[memory.Addr]
}

// parallelThreshold is the live-state count above which child
// expansion fans out through the sweep engine.
const parallelThreshold = 2048

// enumerate walks the graph's nodes in trace (topological) order,
// branching each undecided node into exclude/include, deduplicating
// states by (image, killed-set) and folding dominated states into
// their antichain maxima. See the package comment for the soundness
// argument.
func enumerate(g *graph.Graph, cfg Config) (*space, error) {
	n := g.Len()
	budget := cfg.budget()

	// Transitive descendant bitsets: desc[i] = every node reachable
	// from i by forward edges. Edges point backward (In), so walk IDs
	// descending and fold each node into its predecessors.
	desc := make([]bits, n)
	for i := 0; i < n; i++ {
		desc[i] = newBits(n)
	}
	for i := n - 1; i >= 0; i-- {
		for _, e := range g.Nodes[i].In {
			from := int(e.From)
			d := desc[from]
			d[i>>6] |= 1 << (uint(i) & 63)
			for w := range desc[i] {
				d[w] |= desc[i][w]
			}
		}
	}

	writes := make([][]wordWrite, n)
	sp := &space{touched: intervals.NewSet[memory.Addr]()}
	for i := 0; i < n; i++ {
		writes[i] = nodeWrites(g, i)
		for _, w := range writes[i] {
			sp.touched.Insert(w.addr, w.addr+memory.WordSize)
		}
	}

	finalIdx := make(map[string]int)
	addFinal := func(s *state) {
		if _, ok := finalIdx[s.ikey]; ok {
			return
		}
		finalIdx[s.ikey] = len(sp.finals)
		sp.finals = append(sp.finals, &final{img: s.img, dec: s.dec})
	}

	live := []*state{{killed: newBits(n), dec: newBits(n), ikey: ""}}
	for t := 0; t < n; t++ {
		// Expand: each live state yields one child (node t already
		// killed) or two (exclude / include). Expansion is pure, so it
		// fans out through sweep with a deterministic in-order merge.
		expand := func(s *state) [2]*state {
			if s.killed.get(t) {
				// Forced exclusion: descendants of t are already in
				// the killed set (killed is transitively closed).
				s.final = s.killed.coversFrom(t+1, n)
				return [2]*state{s, nil}
			}
			ex := &state{
				img: s.img, ikey: s.ikey,
				killed: s.killed.withOr(t, desc[t]),
				dec:    s.dec,
			}
			ex.final = ex.killed.coversFrom(t+1, n)
			in := &state{
				killed: s.killed,
				dec:    s.dec.withBit(t),
			}
			if img, changed := applyWrites(s.img, writes[t]); changed {
				in.img, in.ikey = img, imgKey(img)
			} else {
				in.img, in.ikey = s.img, s.ikey
			}
			in.final = in.killed.coversFrom(t+1, n)
			return [2]*state{ex, in}
		}

		children := make([][2]*state, len(live))
		if len(live) >= parallelThreshold && cfg.Sweep.Workers() > 1 {
			scfg := cfg.Sweep
			scfg.Name = "exhaustive-expand"
			err := sweep.Run(len(live), scfg, func(i int) ([2]*state, error) {
				return expand(live[i]), nil
			}, func(i int, v [2]*state) error {
				children[i] = v
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			for i, s := range live {
				children[i] = expand(s)
			}
		}

		// Merge: dedup by (image, killed suffix), fold dominated
		// states into their dominators. Buckets key on the image;
		// each bucket is an antichain of killed-sets.
		next := live[:0:0]
		buckets := make(map[string][]int, len(children))
		emit := func(s *state) {
			if s.final {
				addFinal(s)
				return
			}
			idxs := buckets[s.ikey]
			for _, i := range idxs {
				e := next[i]
				if e == nil {
					continue
				}
				// e dominates s: e's killed-set is a subset (e keeps
				// every option s has), so s explores a subset of e's
				// reachable images.
				if e.killed.subsetFrom(s.killed, t+1, n) {
					sp.subsumed++
					return
				}
				// s dominates e.
				if s.killed.subsetFrom(e.killed, t+1, n) {
					sp.subsumed++
					next[i] = nil
				}
			}
			buckets[s.ikey] = append(idxs, len(next))
			next = append(next, s)
		}
		for _, pair := range children {
			emit(pair[0])
			if pair[1] != nil {
				emit(pair[1])
			}
		}
		// Compact dominated slots.
		live = live[:0]
		for _, s := range next {
			if s != nil {
				live = append(live, s)
			}
		}
		if len(live) > sp.peakLive {
			sp.peakLive = len(live)
		}
		if len(live)+len(sp.finals) > budget {
			return nil, fmt.Errorf("exhaustive: state budget %d exceeded at node %d/%d (%d live + %d final states); shrink the fixture or raise Budget",
				budget, t+1, n, len(live), len(sp.finals))
		}
	}
	for _, s := range live {
		addFinal(s)
	}

	sp.cuts, sp.cutsSat = countCuts(g, desc, budget)
	return sp, nil
}

// countCuts computes the exact number of consistent cuts with a
// dynamic program over killed-set suffixes: states with identical
// killed suffixes have identical decision subtrees, so their path
// counts sum exactly (unlike the image enumeration's antichain
// folding, which redirects paths across states with different
// futures). Saturates at MaxUint64 — or when the DP's own state
// count exceeds budget, in which case the true count is at least the
// returned value.
func countCuts(g *graph.Graph, desc []bits, budget int) (uint64, bool) {
	n := g.Len()
	type centry struct {
		killed bits
		count  uint64
	}
	sat := false
	add := func(a, b uint64) uint64 {
		sum := a + b
		if sum < a {
			sat = true
			return math.MaxUint64
		}
		return sum
	}
	suffixKey := func(k bits, from int) string {
		b := make([]byte, 8*len(k))
		for w, v := range k {
			if w == from>>6 {
				v &= ^uint64(0) << (uint(from) & 63)
			} else if w < from>>6 {
				v = 0
			}
			binary.LittleEndian.PutUint64(b[8*w:], v)
		}
		return string(b)
	}
	live := []*centry{{killed: newBits(n), count: 1}}
	for t := 0; t < n; t++ {
		next := make([]*centry, 0, len(live))
		idx := make(map[string]int, len(live))
		emit := func(k bits, count uint64) {
			key := suffixKey(k, t+1)
			if i, ok := idx[key]; ok {
				next[i].count = add(next[i].count, count)
				return
			}
			idx[key] = len(next)
			next = append(next, &centry{killed: k, count: count})
		}
		for _, s := range live {
			if s.killed.get(t) {
				emit(s.killed, s.count)
				continue
			}
			emit(s.killed.withOr(t, desc[t]), s.count)
			emit(s.killed, s.count)
		}
		live = next
		if len(live) > budget {
			// Too wide to count exactly; report the partial sum as a
			// saturated lower bound.
			total := uint64(0)
			for _, s := range live {
				total = add(total, s.count)
			}
			return total, true
		}
	}
	total := uint64(0)
	for _, s := range live {
		total = add(total, s.count)
	}
	return total, sat
}

// cutOf converts a decision bitset into a graph.Cut.
func cutOf(dec bits, n int) graph.Cut {
	c := graph.Cut{Included: make([]bool, n)}
	for i := 0; i < n; i++ {
		c.Included[i] = dec.get(i)
	}
	return c
}

// imgOfCut materializes a cut into canonical image form by replaying
// its included persists in trace order.
func imgOfCut(g *graph.Graph, c graph.Cut) []wordVal {
	var img []wordVal
	for i := range g.Nodes {
		if !c.Included[i] {
			continue
		}
		img, _ = applyWrites(img, nodeWrites(g, i))
	}
	return img
}
