// Package persistcheck is a static (trace-level) persistency checker:
// it consumes a recorded SC trace plus the persist-order constraint
// graph for a persistency model and reports persistency hazards without
// running the crash simulator.
//
// The paper's central observation is that relaxed persistency models
// admit crash states that sequentially consistent execution order never
// exhibits — bugs invisible to ordinary testing, reachable only through
// the recovery observer (§4). Sampling crash states (internal/observer)
// finds such bugs probabilistically; persistcheck instead analyzes the
// ordering semantics directly, in the spirit of dedicated persistency
// checkers (Ben-David et al.'s survey of persistent-memory correctness
// conditions; Klimis et al.'s "Lost in Interpretation"). Four analyses
// run over one graph build:
//
//   - epoch-race detection (§5.2): a vector-clock persist-happens-before
//     pass over persist epochs that flags conflicting epochs whose
//     persists are left mutually unordered under the model although the
//     SC trace orders them — the exact divergence the recovery observer
//     exploits. Every reported race carries a concrete witness pair and
//     the divergent consistent cut that exhibits it.
//   - unpersisted-publication lint: a persist to recovery-critical
//     metadata (queue head, journal commit record, PSTM seal — declared
//     through the Annotations API) that is not ordered after the data it
//     publishes, so recovery can observe the publication without the
//     payload.
//   - redundant-barrier lint: persist barriers and strand boundaries
//     that induce no new edge in the constraint graph under the model —
//     pure execution cost (§4.1's motivation for minimizing stalls).
//   - escape check: a persistent load whose imported persist dependence
//     is discarded (by a NewStrand) or not yet bound when the thread
//     next persists, for locations the application declared
//     order-critical (§5.3's "a persist strand begins by reading
//     persisted memory locations after which new persists must be
//     ordered").
//
// Each hazard finding carries a one-line repro string in the
// fault-campaign replay format (internal/fault), whose cut section is
// the divergent crash state; `crashsim -replay` materializes it.
package persistcheck

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/trace"
)

// Extent is a byte range of the persistent address space.
type Extent struct {
	Addr memory.Addr
	Size uint64
}

// Contains reports whether the access [a, a+size) lies inside the
// extent.
func (x Extent) Contains(a memory.Addr, size uint8) bool {
	return a >= x.Addr && uint64(a-x.Addr)+uint64(size) <= x.Size
}

// Publication declares one recovery-critical publication word: a
// persistent word whose persists make previously written data reachable
// to recovery (the queue's head pointer, the journal's committed-head,
// the PSTM seal). The checker verifies that every publication persist is
// ordered after the covered data persists it publishes.
type Publication struct {
	// Name labels findings (e.g. "head", "committed-head", "done").
	Name string
	// Word is the publication word's address (8 bytes).
	Word memory.Addr
	// Data lists the extents the word publishes. A publication persist
	// must be ordered after every in-scope data persist to these extents.
	Data []Extent
	// ValueCovers marks words holding a monotonic byte offset into
	// Data[0]: a data persist at Data[0]+idx is published once a
	// persisted value v satisfies idx+size ≤ v. This enables the
	// cross-thread check (a thread publishing another thread's data, as
	// in the two-lock queue); it applies only while v ≤ Data[0].Size
	// (before the ring wraps, offsets map to addresses uniquely).
	ValueCovers bool
	// AllThreads widens a plain (non-ValueCovers) publication's scope
	// from the issuing thread's pending data persists to every thread's:
	// each publication persist must be ordered after all SC-earlier
	// uncovered data persists, regardless of issuer. This expresses
	// state-summary words whose value speaks for other threads' state —
	// the PSTM arm word (overwriting it hides the previous transaction's
	// in-flight evidence) and the journal checkpoint (truncating retires
	// other threads' applies). Coverage is sticky: persists to the same
	// word serialize under strong persist atomicity, so data covered by
	// one publication persist is covered by all later ones.
	AllThreads bool
}

// Region declares an order-critical persistent word for the escape
// check: once a thread loads it, the thread's subsequent persists must
// be ordered after the word's latest persist (§5.3's strand recipe; the
// journal checkpoint and PSTM seal are the in-tree examples).
type Region struct {
	Name string
	Addr memory.Addr
	Size uint64
	// Covers optionally scopes the contract to persists falling inside
	// the listed extents: only those must be ordered after the observed
	// region persist. Empty means every persist the thread issues (the
	// single-structure reading). Composed stores (the sharded kv) scope
	// each shard's region to that shard's own persistent extents, so a
	// thread that observed one shard's checkpoint is not obligated for
	// persists into an unrelated shard.
	Covers []Extent
}

// Annotations is the application-declared recovery metadata the checker
// reasons about. Structures expose it from their Meta (queue, journal,
// pstm each provide a Checks method).
type Annotations struct {
	Pubs       []Publication
	OrderAfter []Region
	// Protected lists the extents whose contents are covered by an
	// integrity mechanism (CRC frame, shadow checksum, dual-copy durable
	// word) so recovery *detects* silent media corruption there instead
	// of trusting it. The unprotected-metadata lint flags declared
	// recovery metadata (publication words, order-after regions) falling
	// outside every Protected extent: such a word is a single point of
	// silent failure — one bit flip re-frames the structure with a clean
	// report.
	Protected []Extent
}

// Merge combines annotation sets (for workloads composing structures).
func (a Annotations) Merge(b Annotations) Annotations {
	return Annotations{
		Pubs:       append(append([]Publication{}, a.Pubs...), b.Pubs...),
		OrderAfter: append(append([]Region{}, a.OrderAfter...), b.OrderAfter...),
		Protected:  append(append([]Extent{}, a.Protected...), b.Protected...),
	}
}

// Config parameterizes a check.
type Config struct {
	// Limit caps stored findings per analysis kind; 0 means 32. The
	// per-kind total is always counted.
	Limit int
	// ReproParams, when set, are embedded in each hazard's repro string
	// so `crashsim -replay` can rebuild the workload (same convention as
	// fault campaigns). Without them repro strings are omitted.
	ReproParams []fault.Param
	// SiteLabel optionally maps a persist address to an annotation-site
	// label for reports, matching telemetry.Tracer.SiteLabel.
	SiteLabel func(memory.Addr) string
}

func (c *Config) limit() int {
	if c.Limit <= 0 {
		return 32
	}
	return c.Limit
}

func (c *Config) site(a memory.Addr) string {
	if c.SiteLabel == nil {
		return ""
	}
	return c.SiteLabel(a)
}

// Check runs all analyses over one trace under one persistency model.
// The constraint graph is built once (coalescing is irrelevant to
// ordering, as in package graph) and shared.
func Check(tr *trace.Trace, p core.Params, ann Annotations, cfg Config) (*Report, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	g, barriers, err := graph.BuildWithBarriers(tr, p)
	if err != nil {
		return nil, err
	}
	r := &Report{Model: p.Model, Events: tr.Len(), Persists: g.Len(), Counts: map[Kind]int{}}
	idx := newGraphIndex(tr, g)

	checkPublications(tr, g, idx, ann, cfg, r)
	checkEscapes(tr, g, idx, p, ann, cfg, r)
	checkEpochRaces(tr, g, idx, p, cfg, r)
	checkBarriers(tr, p, barriers, cfg, r)
	checkUnprotected(g, idx, ann, cfg, r)

	return r, nil
}

// divergentCut returns the earliest crash state exposing node b without
// node a: the down-closure of b under the model graph. Valid under the
// model by construction; invalid under any model that orders a before b
// (in particular SC/strict order whenever a precedes b in the trace),
// which is what makes the state SC-divergent.
func divergentCut(g *graph.Graph, idx *graphIndex, b graph.NodeID) graph.Cut {
	c := graph.Cut{Included: make([]bool, g.Len())}
	for _, id := range idx.ancestors(b) {
		c.Included[id] = true
	}
	c.Included[b] = true
	return c
}

// repro serializes a finding's divergent cut into the fault-campaign
// replay format (empty fault plan).
func (c *Config) repro(cut graph.Cut) string {
	if len(c.ReproParams) == 0 {
		return ""
	}
	s := fault.Scenario{Params: c.ReproParams, Cut: cut}
	return s.Repro()
}

func fmtPersist(e trace.Event) string {
	return fmt.Sprintf("#%d t%d %s %#x/%d", e.Seq, e.TID, e.Kind, uint64(e.Addr), e.Size)
}
