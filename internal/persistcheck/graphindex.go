package persistcheck

import (
	"repro/internal/graph"
	"repro/internal/trace"
)

// graphIndex provides the reachability queries the analyses share over
// one trace-built constraint graph. Trace-built graphs are topologically
// ordered (every edge points backward), which keeps every query a simple
// backward walk.
type graphIndex struct {
	g *graph.Graph
	// nodeOf maps a trace Seq to its persist node, -1 for non-persists.
	nodeOf []graph.NodeID
	// visited is a generation-stamped scratch array for BFS.
	visited []uint32
	gen     uint32
	queue   []graph.NodeID
}

func newGraphIndex(tr *trace.Trace, g *graph.Graph) *graphIndex {
	idx := &graphIndex{
		g:       g,
		nodeOf:  make([]graph.NodeID, tr.Len()),
		visited: make([]uint32, g.Len()),
	}
	for i := range idx.nodeOf {
		idx.nodeOf[i] = -1
	}
	for _, n := range g.Nodes {
		idx.nodeOf[n.Event.Seq] = n.ID
	}
	return idx
}

// hasPath reports whether the model graph orders a before b (a path
// a→…→b exists). Edges point backward, so it walks b's ancestors,
// pruning below a: node ids are topologically ordered, so no node with
// id < a can have a as an ancestor.
func (idx *graphIndex) hasPath(a, b graph.NodeID) bool {
	if a == b {
		return true
	}
	if a > b {
		return false
	}
	idx.gen++
	idx.queue = idx.queue[:0]
	idx.visited[b] = idx.gen
	idx.queue = append(idx.queue, b)
	for len(idx.queue) > 0 {
		n := idx.queue[len(idx.queue)-1]
		idx.queue = idx.queue[:len(idx.queue)-1]
		for _, e := range idx.g.Nodes[n].In {
			if e.From == a {
				return true
			}
			if e.From > a && idx.visited[e.From] != idx.gen {
				idx.visited[e.From] = idx.gen
				idx.queue = append(idx.queue, e.From)
			}
		}
	}
	return false
}

// ancestors returns all strict ancestors of b in the model graph.
func (idx *graphIndex) ancestors(b graph.NodeID) []graph.NodeID {
	idx.gen++
	idx.queue = idx.queue[:0]
	idx.visited[b] = idx.gen
	idx.queue = append(idx.queue, b)
	var out []graph.NodeID
	for i := 0; i < len(idx.queue); i++ {
		for _, e := range idx.g.Nodes[idx.queue[i]].In {
			if idx.visited[e.From] != idx.gen {
				idx.visited[e.From] = idx.gen
				idx.queue = append(idx.queue, e.From)
				out = append(out, e.From)
			}
		}
	}
	return out
}

// markAncestors stamps b and all its ancestors with a fresh generation
// and returns it; inMarked then answers membership queries against that
// set without re-walking.
func (idx *graphIndex) markAncestors(b graph.NodeID) uint32 {
	idx.gen++
	idx.queue = idx.queue[:0]
	idx.visited[b] = idx.gen
	idx.queue = append(idx.queue, b)
	for i := 0; i < len(idx.queue); i++ {
		for _, e := range idx.g.Nodes[idx.queue[i]].In {
			if idx.visited[e.From] != idx.gen {
				idx.visited[e.From] = idx.gen
				idx.queue = append(idx.queue, e.From)
			}
		}
	}
	return idx.gen
}

func (idx *graphIndex) inMarked(n graph.NodeID, gen uint32) bool {
	return idx.visited[n] == gen
}
