package persistcheck

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/telemetry"
)

func TestReportLimitsStorageButCountsAll(t *testing.T) {
	r := &Report{Counts: map[Kind]int{}}
	for i := 0; i < 5; i++ {
		r.add(Finding{Kind: EpochRace, Severity: Hazard, Msg: "race"}, 3)
	}
	r.add(Finding{Kind: RedundantBarrier, Severity: Perf, Msg: "noop barrier"}, 3)
	if len(r.Findings) != 4 {
		t.Fatalf("stored %d findings, want 4", len(r.Findings))
	}
	if r.Counts[EpochRace] != 5 || r.Counts[RedundantBarrier] != 1 {
		t.Fatalf("counts: %v", r.Counts)
	}
	if r.Hazards() != 5 || r.PerfFindings() != 1 {
		t.Fatalf("hazards=%d perf=%d", r.Hazards(), r.PerfFindings())
	}
	r.skip("strand: not applicable")
	s := r.String()
	for _, want := range []string{"hazards=5", "perf=1", "(skipped: strand: not applicable)", "... 2 more epoch-race"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestKindAndSeverityNames(t *testing.T) {
	names := map[Kind]string{
		EpochRace:              "epoch-race",
		UnpersistedPublication: "unpersisted-publication",
		RedundantBarrier:       "redundant-barrier",
		UnboundRead:            "unbound-read",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d: %q", k, k.String())
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind string")
	}
	if Hazard.String() != "hazard" || Perf.String() != "perf" {
		t.Fatal("severity strings")
	}
	if kindSeverity(RedundantBarrier) != Perf || kindSeverity(EpochRace) != Hazard {
		t.Fatal("kind severities")
	}
}

func TestFindingStringRendersSiteAndRepro(t *testing.T) {
	f := Finding{Kind: UnpersistedPublication, Severity: Hazard, Msg: "m", Site: "head", Repro: "fault1|k=v|cut=1:01|plan="}
	s := f.String()
	if !strings.Contains(s, "[site head]") || !strings.Contains(s, "repro: fault1") {
		t.Fatalf("finding rendering: %s", s)
	}
}

func TestExtentContains(t *testing.T) {
	x := Extent{Addr: 0x100, Size: 16}
	if !x.Contains(0x100, 8) || !x.Contains(0x108, 8) {
		t.Fatal("in-range access rejected")
	}
	if x.Contains(0x0f8, 8) || x.Contains(0x110, 8) || x.Contains(0x10c, 8) {
		t.Fatal("out-of-range access accepted")
	}
}

func TestAnnotationsMerge(t *testing.T) {
	a := Annotations{Pubs: []Publication{{Name: "head"}}, OrderAfter: []Region{{Name: "ckpt"}}}
	b := Annotations{Pubs: []Publication{{Name: "done"}}}
	m := a.Merge(b)
	if len(m.Pubs) != 2 || len(m.OrderAfter) != 1 {
		t.Fatalf("merge: %+v", m)
	}
	if m.Pubs[0].Name != "head" || m.Pubs[1].Name != "done" {
		t.Fatalf("merge order: %+v", m.Pubs)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.limit() != 32 {
		t.Fatalf("default limit %d", c.limit())
	}
	if c.site(memory.PersistentBase) != "" {
		t.Fatal("site without labeler")
	}
	c.SiteLabel = func(memory.Addr) string { return "x" }
	if c.site(memory.PersistentBase) != "x" {
		t.Fatal("site labeler ignored")
	}
	if c.repro(graph.Cut{}) != "" {
		t.Fatal("repro without params")
	}
}

func TestObservePublishesTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := &Report{
		Model:    core.Epoch,
		Persists: 7,
		Counts:   map[Kind]int{EpochRace: 2, RedundantBarrier: 3},
	}
	Observe(reg, r)
	c := reg.Counter(telemetry.Label("persistcheck_findings", "kind", "epoch-race", "severity", "hazard"))
	if c.Value() != 2 {
		t.Fatalf("findings counter = %d", c.Value())
	}
	p := reg.Counter(telemetry.Label("persistcheck_findings", "kind", "redundant-barrier", "severity", "perf"))
	if p.Value() != 3 {
		t.Fatalf("perf counter = %d", p.Value())
	}
	if g := reg.Gauge(telemetry.Label("persistcheck_hazards", "model", "epoch")); g.Value() != 2 {
		t.Fatalf("hazards gauge = %v", g.Value())
	}
	if g := reg.Gauge(telemetry.Label("persistcheck_persists", "model", "epoch")); g.Value() != 7 {
		t.Fatalf("persists gauge = %v", g.Value())
	}
	Observe(nil, r) // nil registry is a no-op
	Observe(reg, nil)
}
