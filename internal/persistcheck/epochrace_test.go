package persistcheck_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/persistcheck"
	"repro/internal/trace"
)

// Synthetic epoch-race traces. The shipped structures are either
// race-free (barriers bracket their synchronization) or their racing
// hazards surface through the publication lint, so the race analysis is
// exercised on hand-built traces: an unsynchronized volatile handoff
// between two epochs that persist to the same cache line — the
// false-sharing pattern where relaxed reordering becomes visible to
// recovery.

func pline() memory.Addr { return memory.PersistentBase }
func vflag() memory.Addr { return memory.VolatileBase }

func store(tr *trace.Trace, tid int32, a memory.Addr, v uint64) {
	tr.Emit(trace.Event{TID: tid, Kind: trace.Store, Addr: a, Size: 8, Val: v})
}

func load(tr *trace.Trace, tid int32, a memory.Addr) {
	tr.Emit(trace.Event{TID: tid, Kind: trace.Load, Addr: a, Size: 8})
}

func barrier(tr *trace.Trace, tid int32) {
	tr.Emit(trace.Event{TID: tid, Kind: trace.PersistBarrier})
}

func raceCheck(t *testing.T, tr *trace.Trace, model core.Model) *persistcheck.Report {
	t.Helper()
	rep, err := persistcheck.Check(tr, core.Params{Model: model}, persistcheck.Annotations{}, persistcheck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestFalseSharingEpochRaceConfirmed(t *testing.T) {
	// T0 persists word 0 of a line and publishes a volatile flag in the
	// same epoch; T1 consumes the flag and persists word 1 of the same
	// line. Under epoch persistency the two persists are unordered —
	// a confirmed race with a same-line witness pair.
	tr := &trace.Trace{}
	store(tr, 0, pline(), 0xa1)
	store(tr, 0, vflag(), 1)
	load(tr, 1, vflag())
	store(tr, 1, pline()+8, 0xb2)

	rep := raceCheck(t, tr, core.Epoch)
	if rep.Counts[persistcheck.EpochRace] != 1 {
		t.Fatalf("expected one confirmed race:\n%s", rep)
	}
	f := rep.Findings[0]
	if f.Kind != persistcheck.EpochRace || f.Severity != persistcheck.Hazard {
		t.Fatalf("wrong finding: %s", f)
	}
	if !strings.Contains(f.Msg, "unordered under epoch") {
		t.Fatalf("message does not name the model: %s", f.Msg)
	}

	// Cross-validate the witness cut as a reachable SC-divergent crash
	// state: valid under the model, impossible under SC. Materialized, it
	// holds T1's persist without T0's — the line mixes two SC moments.
	g, err := graph.Build(tr, core.Params{Model: core.Epoch})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Valid(f.Cut) {
		t.Fatal("witness cut not reachable under the model")
	}
	ae, be := g.Nodes[f.WitnessA].Event, g.Nodes[f.WitnessB].Event
	if ae.Seq >= be.Seq {
		t.Fatalf("witnesses not SC-oriented: #%d vs #%d", ae.Seq, be.Seq)
	}
	if !f.Cut.Included[f.WitnessB] || f.Cut.Included[f.WitnessA] {
		t.Fatal("cut does not exhibit B without A")
	}
	im := g.Materialize(f.Cut)
	if im.ReadWord(pline()) != 0 || im.ReadWord(pline()+8) != 0xb2 {
		t.Fatalf("materialized line = %#x/%#x, want 0x0/0xb2 (word 1 without word 0)",
			im.ReadWord(pline()), im.ReadWord(pline()+8))
	}
	// SC prefixes are exactly the cuts closed under trace order; this
	// cut skips the SC-earlier witness, so no prefix matches it.
	for n := graph.NodeID(0); n < graph.NodeID(g.Len()); n++ {
		prefix := graph.Cut{Included: make([]bool, g.Len())}
		for m := graph.NodeID(0); m <= n; m++ {
			prefix.Included[m] = true
		}
		if cutsEqual(prefix, f.Cut) {
			t.Fatal("witness cut equals an SC prefix")
		}
	}
}

func cutsEqual(a, b graph.Cut) bool {
	for i := range a.Included {
		if a.Included[i] != b.Included[i] {
			return false
		}
	}
	return true
}

func TestCrossLineRaceIsNotAHazard(t *testing.T) {
	// Same handoff, but T1 persists a different cache line. The epoch
	// detector still reports the racing epochs, but the reordering is the
	// concurrency relaxed persistency is for — no recovery-visible
	// conflict, so the checker must not report it.
	tr := &trace.Trace{}
	store(tr, 0, pline(), 0xa1)
	store(tr, 0, vflag(), 1)
	load(tr, 1, vflag())
	store(tr, 1, pline()+64, 0xb2)

	rep := raceCheck(t, tr, core.Epoch)
	if rep.Counts[persistcheck.EpochRace] != 0 {
		t.Fatalf("cross-line race reported as hazard:\n%s", rep)
	}
	rr, err := core.DetectEpochRaces(tr, core.RaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Total == 0 {
		t.Fatal("expected the underlying epoch race to exist (only its witness is missing)")
	}
}

func TestBarrieredHandoffIsRaceFree(t *testing.T) {
	// The paper's race-free discipline: barriers put the synchronization
	// accesses in persist-free epochs, so no race and no finding.
	tr := &trace.Trace{}
	store(tr, 0, pline(), 0xa1)
	barrier(tr, 0)
	store(tr, 0, vflag(), 1)
	load(tr, 1, vflag())
	barrier(tr, 1)
	store(tr, 1, pline()+8, 0xb2)

	rep := raceCheck(t, tr, core.Epoch)
	if rep.Counts[persistcheck.EpochRace] != 0 {
		t.Fatalf("barriered handoff flagged:\n%s", rep)
	}
}

func TestEpochRaceAnalysisSkippedOutsideEpochModels(t *testing.T) {
	tr := &trace.Trace{}
	store(tr, 0, pline(), 0xa1)
	store(tr, 0, vflag(), 1)
	load(tr, 1, vflag())
	store(tr, 1, pline()+8, 0xb2)

	for _, model := range []core.Model{core.Strict, core.Strand} {
		rep := raceCheck(t, tr, model)
		if rep.Counts[persistcheck.EpochRace] != 0 {
			t.Fatalf("%v: race reported", model)
		}
		found := false
		for _, s := range rep.Skipped {
			found = found || strings.Contains(s, "epoch-race")
		}
		if !found {
			t.Fatalf("%v: no skip note:\n%s", model, rep)
		}
	}
}
