package persistcheck

import "repro/internal/telemetry"

// Observe publishes a report's aggregates to a metrics registry, using
// the same labeled-counter conventions as the rest of the telemetry
// surface (persistcheck_findings{kind,severity} and summary gauges).
func Observe(reg *telemetry.Registry, r *Report) {
	if reg == nil || r == nil {
		return
	}
	reg.SetHelp("persistcheck_findings", "persistency-checker findings by analysis kind")
	reg.SetHelp("persistcheck_hazards", "persistency-checker hazard findings")
	reg.SetHelp("persistcheck_persists", "persists analyzed by the persistency checker")
	for _, k := range []Kind{EpochRace, UnpersistedPublication, RedundantBarrier, UnboundRead} {
		if n := r.Counts[k]; n > 0 {
			reg.Counter(telemetry.Label("persistcheck_findings",
				"kind", k.String(), "severity", kindSeverity(k).String())).Add(int64(n))
		}
	}
	reg.Gauge(telemetry.Label("persistcheck_hazards", "model", r.Model.String())).Set(float64(r.Hazards()))
	reg.Gauge(telemetry.Label("persistcheck_persists", "model", r.Model.String())).Set(float64(r.Persists))
}
