#!/bin/sh
# bench_core.sh runs the hot-path microbenchmarks (simulator feed,
# single-pass multi-model walk, trace replay, graph build) and writes
# BENCH_core.json with ns/op, B/op, and allocs/op per benchmark.
#
# Usage: scripts/bench_core.sh [benchtime] [count] > BENCH_core.json
# benchtime defaults to 100x; CI uses 1x for a smoke pass. A count > 1
# repeats every benchmark (go test -count), leaving repeated names in
# the JSON — benchdiff groups those into per-iteration samples and can
# then apply its Mann-Whitney noise gate instead of thresholds alone.
#
# Each benchmark's first iteration runs cold (page faults, branch
# predictors, the process's first large allocations) and lands far off
# the steady-state distribution, skewing means and tripping the noise
# gate. One extra warmup iteration per benchmark runs and is
# discarded, so the JSON holds exactly `count` steady-state samples
# per name.
set -e
benchtime="${1:-100x}"
count="${2:-1}"
cd "$(dirname "$0")/.."

go test -run '^$' -benchmem -benchtime "$benchtime" -count $((count + 1)) \
    -bench 'BenchmarkSimFeed|BenchmarkSimulateAll|BenchmarkTraceReplay|BenchmarkTraceEmit|BenchmarkGraphBuild' \
    ./internal/core ./internal/trace ./internal/graph |
awk -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"suite\": \"core-microbench\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    n = 0
}
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; next } # discard warmup sample
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "\n  ]\n}\n" }
'
