// Package repro is a from-scratch Go reproduction of "Memory
// Persistency" (Pelley, Chen, Wenisch; ISCA 2014).
//
// The library models persistency — the ordering of NVRAM writes with
// respect to failure — as a consistency-like memory model, and
// reproduces the paper's evaluation: persist ordering constraint
// critical paths of a thread-safe persistent queue under strict, epoch
// (± racing), and strand persistency.
//
// Layout:
//
//	internal/core      persistency models + timing simulation (the contribution)
//	internal/exec      SC/PSO simulated multithreading (PIN-substitute tracer)
//	internal/memory    address spaces, heaps, crash images
//	internal/trace     memory-event model + binary codec
//	internal/locks     MCS/ticket/TAS locks on simulated memory
//	internal/graph     explicit persist-order DAGs, cycles, crash cuts, DOT
//	internal/observer  recovery observer: sampling + adversarial crash sweeps
//	internal/queue     the paper's persistent queue (CWL, 2LC) + recovery
//	internal/journal   redo-journaled metadata store workload
//	internal/pstm      durable undo-log transactions workload
//	internal/epochhw   BPFS-style epoch hardware, differentially validated
//	internal/nvram     device timing model, banks/channels, Start-Gap wear
//	internal/stats     summary stats, histograms, table rendering
//	internal/bench     Table 1 / Figures 2–5 harness + workload tables
//	cmd/pqbench        regenerate the tables, figures, and ablations
//	cmd/crashsim       failure injection CLI (queue and journal)
//	cmd/tracedump      trace capture, inspection, DOT export
//	examples/          quickstart, ordering, wal, kvstore, fsmeta, relaxed
//
// See README.md for a walkthrough, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for paper-vs-measured results.
package repro
